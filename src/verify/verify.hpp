// Static plan verifier (DESIGN.md §15): prove every ExecutionPlan
// sound before it runs.
//
// PRs 6–8 made Engine::prepare() emit increasingly aggressive
// artifacts — cost-model kernel picks, residual/concat fusion with
// buffer aliasing, a liveness-driven arena that overlaps activations,
// compressed weight storage — and until now the only thing standing
// between a subtly-illegal plan and silent wrong detections was the
// same code that constructed the plan. This subsystem is the
// independent oracle: it re-derives, from the Graph and the plan's
// *decisions* alone and sharing no logic with nn/planner.cpp or
// nn/fusion.cpp,
//
//   (a) liveness/aliasing soundness — its own placement-chain walk and
//       write/read interval analysis proving no two simultaneously-
//       live buffers overlap in the arena and every placed view stays
//       inside its root allocation;
//   (b) fusion legality — residual-fold structure, activation order
//       and EpiMode re-proved per fused node;
//   (c) dataflow typing — precision, weight-storage and shape
//       consistency on every edge (u8-resident outputs only feed
//       quantized readers, compressed panels only where the plan says
//       so, Winograd only on legal 3×3 stride-1 shapes);
//   (d) coverage completeness — every live packed panel has a CRC32
//       record, every node is well-formed, every output is produced,
//       and the plan's summary counters match its per-node contents.
//
// It runs three ways: as a debug-build gate inside Engine::prepare()
// (install_prepare_gate — compiled out of Release hot paths like
// OCB_FAULT_HOOKS), as the standalone tools/ocb_verify CLI sweeping
// the model registry × precision/storage × fusion cross-product, and
// under mutation testing (plan_mutator.hpp) that plants seeded defects
// and proves each check individually fires — so the analyzer itself is
// validated, not trusted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/engine.hpp"

namespace ocb::verify {

/// The check catalog. Every Finding names the check that produced it;
/// the mutation tests prove each one fires on its target defect class.
enum class CheckId : std::uint8_t {
  // (a) liveness / aliasing
  kLivenessOverlap,  ///< two simultaneously-live buffers share arena bytes
  kViewBounds,       ///< a view or root escapes its backing allocation
  kPlacementChain,   ///< placement cycle / bad parent / wrong concat offset
  // (b) fusion legality
  kFusionSkip,      ///< skipped node isn't a legally folded residual Add
  kFusionEpilogue,  ///< EpiMode / activation order reorders the fold
  kFusionCapability,  ///< fold on a kernel or storage without EpiMode
  kFusionAlias,       ///< in-place residual alias overwrites live data
  // (c) dataflow typing
  kPrecisionBoundary,  ///< u8 output feeds a float reader (dropped dequant)
  kStorageTyping,      ///< planned storage without matching packed panels
  kShapeLegality,      ///< algo illegal for the node's geometry
  // (d) coverage completeness
  kChecksumCoverage,  ///< live packed panel without a CRC32 record
  kReachability,      ///< malformed graph / output never produced
  kPlanCounters,      ///< summary counters disagree with per-node plans
};

inline constexpr int kCheckCount = 13;

const char* check_name(CheckId id) noexcept;

/// One verifier finding. `node` is the offending graph node, or -1 for
/// whole-plan findings.
struct Finding {
  CheckId check = CheckId::kPlanCounters;
  int node = -1;
  std::string message;
};

/// The result of one verification pass.
struct Report {
  std::vector<Finding> findings;

  bool clean() const noexcept { return findings.empty(); }
  int count(CheckId id) const noexcept;
  /// Multi-line human-readable listing ("clean" when empty).
  std::string to_text() const;
};

/// Which packed weight formats a node carries and their recorded CRCs
/// (mirrors Engine::PanelState; 0 = no record).
struct PanelRecord {
  bool dense = false;
  bool sparse = false;
  bool sparse_half = false;
  bool half = false;
  bool winograd = false;
  std::uint32_t dense_crc = 0;
  std::uint32_t sparse_crc = 0;
  std::uint32_t half_crc = 0;
};

/// A node's INT8 state under the plan (mirrors Engine::QuantState).
struct QuantRecord {
  bool quantized = false;
  bool emit_u8 = false;
};

/// Everything the analyzer sees: the graph plus the plan's *decisions*,
/// held by value so mutation tests can corrupt any field without
/// touching an engine. Panels/quant may be empty (pure plan_fusion
/// snapshots, e.g. the fuzz tests) — the corresponding checks skip.
struct PlanSnapshot {
  nn::Graph graph;
  nn::ExecutionPlan plan;
  nn::MemoryPlan fusion;
  nn::Precision precision = nn::Precision::kFp32;
  int max_batch = 1;
  std::vector<PanelRecord> panels;
  std::vector<QuantRecord> quant;
};

/// Capture an engine's active plan for verification or mutation.
PlanSnapshot snapshot(const nn::Engine& engine);

/// Run the full check catalog over a snapshot.
Report verify(const PlanSnapshot& snap);

/// Snapshot + verify, plus the applied-layout checks only a live
/// engine supports: the actual per-node base pointers and strides are
/// compared against the independently re-derived placement and proved
/// in bounds of their backing storage.
Report verify(const nn::Engine& engine);

/// Install/remove the Engine::prepare() gate: every rebuilt plan is
/// verified and a finding OCB_CHECK-fails with the report text. The
/// call sites inside the engine compile away unless OCB_PLAN_VERIFY is
/// defined (default outside Release); installing is always safe.
void install_prepare_gate() noexcept;
void remove_prepare_gate() noexcept;

/// RAII gate for tests: installs on construction, removes on scope
/// exit.
class ScopedPrepareGate {
 public:
  ScopedPrepareGate() noexcept { install_prepare_gate(); }
  ~ScopedPrepareGate() { remove_prepare_gate(); }
  ScopedPrepareGate(const ScopedPrepareGate&) = delete;
  ScopedPrepareGate& operator=(const ScopedPrepareGate&) = delete;
};

// --- Internal: the per-family passes (one TU each) -------------------
// Exposed so tests can aim a single family; verify() runs them all.
namespace detail {

/// Independently resolved placement: root buffer and within-image
/// float offset per node, or ok=false when the chain itself is broken
/// (cycle / out-of-range parent) — in which case interval analysis is
/// skipped for the affected nodes.
struct Placement {
  std::vector<int> root;
  std::vector<std::size_t> offset;
  std::vector<char> ok;
};

/// Walk every placement chain with cycle detection; appends
/// kPlacementChain findings for broken chains.
Placement resolve_placement(const PlanSnapshot& snap, Report& report);

void check_liveness(const PlanSnapshot& snap, const Placement& placement,
                    Report& report);
void check_fusion(const PlanSnapshot& snap, Report& report);
void check_dataflow(const PlanSnapshot& snap, Report& report);
void check_coverage(const PlanSnapshot& snap, Report& report);

/// Graph edge well-formedness (inputs in range and strictly earlier —
/// the topological invariant every other pass leans on). Returns false
/// when indexing through the graph would be unsafe.
bool check_structure(const PlanSnapshot& snap, Report& report);

/// True when the snapshot is too malformed (size mismatches) for the
/// per-node passes to index safely; verify() reports and stops there.
bool check_well_formed(const PlanSnapshot& snap, Report& report);

void add_finding(Report& report, CheckId check, int node,
                 std::string message);

}  // namespace detail

}  // namespace ocb::verify
