#include "verify/verify.hpp"

#include "core/error.hpp"

namespace ocb::verify {

const char* check_name(CheckId id) noexcept {
  switch (id) {
    case CheckId::kLivenessOverlap: return "liveness-overlap";
    case CheckId::kViewBounds: return "view-bounds";
    case CheckId::kPlacementChain: return "placement-chain";
    case CheckId::kFusionSkip: return "fusion-skip";
    case CheckId::kFusionEpilogue: return "fusion-epilogue";
    case CheckId::kFusionCapability: return "fusion-capability";
    case CheckId::kFusionAlias: return "fusion-alias";
    case CheckId::kPrecisionBoundary: return "precision-boundary";
    case CheckId::kStorageTyping: return "storage-typing";
    case CheckId::kShapeLegality: return "shape-legality";
    case CheckId::kChecksumCoverage: return "checksum-coverage";
    case CheckId::kReachability: return "reachability";
    case CheckId::kPlanCounters: return "plan-counters";
  }
  return "unknown";
}

int Report::count(CheckId id) const noexcept {
  int n = 0;
  for (const Finding& f : findings)
    if (f.check == id) ++n;
  return n;
}

std::string Report::to_text() const {
  if (findings.empty()) return "plan verification: clean\n";
  std::string out = "plan verification: " +
                    std::to_string(findings.size()) + " finding(s)\n";
  for (const Finding& f : findings) {
    out += "  [";
    out += check_name(f.check);
    out += "] ";
    if (f.node >= 0) out += "node " + std::to_string(f.node) + ": ";
    out += f.message;
    out += '\n';
  }
  return out;
}

namespace detail {

void add_finding(Report& report, CheckId check, int node,
                 std::string message) {
  report.findings.push_back(Finding{check, node, std::move(message)});
}

bool check_well_formed(const PlanSnapshot& snap, Report& report) {
  const std::size_t n = static_cast<std::size_t>(snap.graph.node_count());
  bool ok = true;
  if (snap.plan.nodes.size() != n) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "plan has " + std::to_string(snap.plan.nodes.size()) +
                    " node entries for a " + std::to_string(n) +
                    "-node graph");
    ok = false;
  }
  if (snap.fusion.nodes.size() != n) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "fusion plan has " + std::to_string(snap.fusion.nodes.size()) +
                    " node entries for a " + std::to_string(n) +
                    "-node graph");
    ok = false;
  }
  if (snap.fusion.planned && snap.fusion.offsets.size() != n) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "planned arena carries " +
                    std::to_string(snap.fusion.offsets.size()) +
                    " offsets for a " + std::to_string(n) + "-node graph");
    ok = false;
  }
  if (!snap.panels.empty() && snap.panels.size() != n) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "panel records do not cover the graph");
    ok = false;
  }
  if (!snap.quant.empty() && snap.quant.size() != n) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "quant records do not cover the graph");
    ok = false;
  }
  if (snap.max_batch < 1) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "non-positive max_batch");
    ok = false;
  }
  return ok;
}

}  // namespace detail

Report verify(const PlanSnapshot& snap) {
  Report report;
  if (!detail::check_well_formed(snap, report)) return report;
  // Edge well-formedness next: every other pass indexes through node
  // input lists, so a malformed graph stops the run here.
  if (!detail::check_structure(snap, report)) return report;
  const detail::Placement placement =
      detail::resolve_placement(snap, report);
  detail::check_liveness(snap, placement, report);
  detail::check_fusion(snap, report);
  detail::check_dataflow(snap, report);
  detail::check_coverage(snap, report);
  return report;
}

}  // namespace ocb::verify
