// Fusion legality (check family (b), DESIGN.md §15).
//
// A residual fold rewrites `out = add_act(x + conv_act(W·u))` into a
// single conv whose epilogue accumulates into x's (preloaded) buffer.
// That is only sound when: the skipped Add really is claimed by exactly
// one conv; the conv's result reaches no one except through the fold
// (single consumer, not a graph output, buffer not doubling as a
// concat view); at most one of the two activations exists, and the
// EpiMode applies it on the correct side of the accumulate; the chosen
// kernel/storage actually implements EpiMode; and, when the Add was
// aliased in place onto the other operand, nothing reads that operand
// at or after the conv that overwrites it. All of it is re-derived
// here from the graph and the raw NodeFusion fields — the eligibility
// logic in nn/fusion.cpp is never consulted.
#include <string>
#include <vector>

#include "verify/verify.hpp"

namespace ocb::verify::detail {

namespace {

/// Does the *effective* plan for this conv run a kernel with EpiMode
/// support? upgrade_fused promises the engine re-plans a materialized
/// im2col node as kIm2colFused; engine snapshots arrive with the
/// rewrite already applied, raw plan_fusion output without.
bool epilogue_capable(const nn::ConvPlan& plan, bool upgrade_fused) noexcept {
  nn::ConvAlgo algo = plan.algo;
  if (upgrade_fused && algo == nn::ConvAlgo::kIm2colGemm)
    algo = nn::ConvAlgo::kIm2colFused;
  if (plan.storage != nn::WeightStorage::kDense) return false;
  return algo == nn::ConvAlgo::kDirectGemm ||
         algo == nn::ConvAlgo::kWinograd ||
         algo == nn::ConvAlgo::kIm2colFused;
}

}  // namespace

void check_fusion(const PlanSnapshot& snap, Report& report) {
  const int n = snap.graph.node_count();

  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    for (int s : snap.graph.node(j).inputs)
      consumers[static_cast<std::size_t>(s)].push_back(j);
  const std::vector<int>& outs = snap.graph.outputs();
  auto is_output = [&](int i) {
    return std::find(outs.begin(), outs.end(), i) != outs.end();
  };

  // How many convs claim each skipped node as their fold target.
  std::vector<int> claimed(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < n; ++c) {
    const nn::NodeFusion& cf = snap.fusion.nodes[static_cast<std::size_t>(c)];
    if (cf.residual_add && cf.residual_out >= 0 && cf.residual_out < n)
      ++claimed[static_cast<std::size_t>(cf.residual_out)];
  }

  // --- Skipped nodes: each must be a residual Add someone folds -----
  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (!snap.fusion.nodes[ui].skip) continue;
    if (snap.graph.node(i).kind != nn::OpKind::kAdd) {
      add_finding(report, CheckId::kFusionSkip, i,
                  "skipped node is not an Add — nothing will compute it");
      continue;
    }
    if (claimed[ui] != 1) {
      add_finding(report, CheckId::kFusionSkip, i,
                  "skipped Add is claimed by " + std::to_string(claimed[ui]) +
                      " folding convs (need exactly 1)");
    }
  }

  // --- Folding convs -------------------------------------------------
  for (int c = 0; c < n; ++c) {
    const std::size_t cu = static_cast<std::size_t>(c);
    const nn::NodeFusion& cf = snap.fusion.nodes[cu];
    if (!cf.residual_add) continue;

    if (snap.graph.node(c).kind != nn::OpKind::kConv) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "residual fold on a non-Conv node");
      continue;
    }
    const int a = cf.residual_out;
    const int src = cf.residual_src;
    if (a < 0 || a >= n || src < 0 || src >= n || src == a) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "fold names an invalid residual_out/residual_src");
      continue;
    }
    const nn::Node& add_node = snap.graph.node(a);
    if (add_node.kind != nn::OpKind::kAdd ||
        !snap.fusion.nodes[static_cast<std::size_t>(a)].skip) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "fold target " + std::to_string(a) +
                      " is not a skipped Add");
      continue;
    }
    // The add must combine exactly this conv with residual_src.
    const bool operands_match =
        add_node.inputs.size() == 2 &&
        ((add_node.inputs[0] == c && add_node.inputs[1] == src) ||
         (add_node.inputs[0] == src && add_node.inputs[1] == c));
    if (!operands_match) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "Add " + std::to_string(a) +
                      " does not combine this conv with node " +
                      std::to_string(src));
      continue;
    }
    // The conv's own buffer is never written (output redirected into
    // the add's): any other reader of it sees garbage.
    for (int t : consumers[cu]) {
      if (t != a) {
        add_finding(report, CheckId::kFusionSkip, c,
                    "folded conv has another consumer (node " +
                        std::to_string(t) +
                        ") that would read its unwritten buffer");
      }
    }
    if (is_output(c)) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "folded conv is a graph output whose buffer is never "
                  "written");
    }
    if (snap.fusion.nodes[cu].place_parent != -1) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "folded conv is also placed as a view — the parent "
                  "would read unwritten bytes");
    }
    if (snap.fusion.nodes[cu].skip) {
      add_finding(report, CheckId::kFusionSkip, c,
                  "folding conv is itself skipped");
    }

    // Activation order: with f = conv act and g = add act, the fold
    // computes either g(x + f(conv)) — impossible in one epilogue when
    // both exist — or, with one of them kNone, kAccThenAct applies g
    // to the sum and kActThenAcc applies f before accumulating.
    const nn::Act conv_act = snap.graph.node(c).act;
    const nn::Act add_act = add_node.act;
    if (conv_act != nn::Act::kNone && add_act != nn::Act::kNone) {
      add_finding(report, CheckId::kFusionEpilogue, c,
                  "both the conv and the Add carry activations — one "
                  "epilogue cannot order them");
    } else if (conv_act == nn::Act::kNone) {
      if (cf.mode != EpiMode::kAccThenAct) {
        add_finding(report, CheckId::kFusionEpilogue, c,
                    "the Add's activation must see the sum "
                    "(kAccThenAct), but the fold stores mode " +
                        std::to_string(static_cast<int>(cf.mode)));
      } else if (cf.act != add_act) {
        add_finding(report, CheckId::kFusionEpilogue, c,
                    "epilogue activation differs from the Add's");
      }
    } else {
      if (cf.mode != EpiMode::kActThenAcc) {
        add_finding(report, CheckId::kFusionEpilogue, c,
                    "the conv's activation must run before the "
                    "accumulate (kActThenAcc), but the fold stores "
                    "mode " +
                        std::to_string(static_cast<int>(cf.mode)));
      } else if (cf.act != conv_act) {
        add_finding(report, CheckId::kFusionEpilogue, c,
                    "epilogue activation differs from the conv's");
      }
    }

    // Kernel capability: the residual combine happens in the GEMM /
    // inverse-transform write-back, which only the dense-storage
    // direct, Winograd and fused-stripe float paths implement.
    if (snap.precision == nn::Precision::kInt8) {
      add_finding(report, CheckId::kFusionCapability, c,
                  "residual fold under kInt8 — the quantized kernels "
                  "run kStore only");
    } else if (!epilogue_capable(snap.plan.nodes[cu], cf.upgrade_fused)) {
      add_finding(report, CheckId::kFusionCapability, c,
                  "planned algo/storage ("
                  + std::string(nn::conv_algo_name(snap.plan.nodes[cu].algo))
                  + "/"
                  + nn::weight_storage_name(snap.plan.nodes[cu].storage) +
                      ") has no residual epilogue");
    }

    // In-place alias: the conv overwrites src's buffer at time c, so
    // every other read of src must happen strictly before then.
    if (snap.fusion.nodes[static_cast<std::size_t>(a)].place_parent == src) {
      for (int t : consumers[static_cast<std::size_t>(src)]) {
        if (t != a && t >= c) {
          add_finding(report, CheckId::kFusionAlias, c,
                      "aliased residual operand " + std::to_string(src) +
                          " is read by node " + std::to_string(t) +
                          " at/after the overwriting conv");
        }
      }
      if (is_output(src)) {
        add_finding(report, CheckId::kFusionAlias, c,
                    "aliased residual operand " + std::to_string(src) +
                        " is a graph output materialized after the "
                        "overwrite");
      }
    }
  }
}

}  // namespace ocb::verify::detail
