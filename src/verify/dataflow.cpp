// Dataflow typing + coverage completeness (check families (c)/(d),
// DESIGN.md §15).
//
// Typing re-derives, per edge and per node, what the planned kernel is
// allowed to consume and produce: quantized algorithms only under
// kInt8 and only with quantized layer state behind them; u8-resident
// outputs only feeding quantized readers (a float reader would consume
// raw quantized bytes — the "dropped dequant" silent-corruption
// class); compressed weight storage only on kernels that read it and
// only with the matching packed panels live; Winograd/direct only on
// the geometries their transforms are derived for; shapes re-inferred
// from first principles on every conv/add/concat edge. Coverage closes
// the loop: a single well-formed input, every output actually
// produced, every live panel checksummed, and the plan's summary
// counters in agreement with its per-node contents (counter drift is
// how a stale or half-rebuilt plan escapes).
#include <algorithm>
#include <string>
#include <vector>

#include "verify/verify.hpp"

namespace ocb::verify::detail {

namespace {

bool quant_algo(nn::ConvAlgo algo) noexcept {
  return algo == nn::ConvAlgo::kIm2colQuant ||
         algo == nn::ConvAlgo::kIm2colQuantFused;
}

/// Does consumer `t` read its inputs through the INT8 path? Mirrors
/// the runtime dispatch rule: quantized linears always, convs exactly
/// when a quantized algorithm is planned *and* quantized layer state
/// exists; everything else (pools, concats, fp32-fallback convs, ...)
/// reads the float view.
bool reads_u8(const PlanSnapshot& snap, int t) {
  const std::size_t tu = static_cast<std::size_t>(t);
  if (!snap.quant[tu].quantized) return false;
  const nn::OpKind kind = snap.graph.node(t).kind;
  if (kind == nn::OpKind::kLinear) return true;
  return kind == nn::OpKind::kConv && quant_algo(snap.plan.nodes[tu].algo);
}

}  // namespace

bool check_structure(const PlanSnapshot& snap, Report& report) {
  const int n = snap.graph.node_count();
  bool indexable = true;
  for (int i = 0; i < n; ++i) {
    const nn::Node& nd = snap.graph.node(i);
    if (nd.kind == nn::OpKind::kInput) {
      if (i != 0) {
        add_finding(report, CheckId::kReachability, i,
                    "input node is not node 0 — execution order feeds "
                    "it stale data");
      }
      continue;
    }
    if (nd.inputs.empty()) {
      add_finding(report, CheckId::kReachability, i,
                  "non-input node with no inputs is unreachable from "
                  "the graph input");
    }
    for (int s : nd.inputs) {
      if (s < 0 || s >= n) {
        add_finding(report, CheckId::kReachability, i,
                    "edge references node " + std::to_string(s) +
                        ", outside the graph");
        indexable = false;
      } else if (s >= i) {
        add_finding(report, CheckId::kReachability, i,
                    "edge references node " + std::to_string(s) +
                        " at/after itself — not a topological order");
      }
    }
  }
  if (n > 0 && snap.graph.node(0).kind != nn::OpKind::kInput) {
    add_finding(report, CheckId::kReachability, 0,
                "node 0 is not the graph input");
  }
  return indexable;
}

void check_dataflow(const PlanSnapshot& snap, Report& report) {
  const int n = snap.graph.node_count();
  const bool int8 = snap.precision == nn::Precision::kInt8;

  if (snap.plan.precision != snap.precision) {
    add_finding(report, CheckId::kPrecisionBoundary, -1,
                "plan precision disagrees with the engine's active "
                "precision");
  }

  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    const nn::Node& nd = snap.graph.node(i);
    const nn::ConvPlan& p = snap.plan.nodes[ui];
    const bool weighted =
        nd.kind == nn::OpKind::kConv || nd.kind == nn::OpKind::kLinear;

    // Algorithm/geometry legality (convs only — the engine dispatches
    // plan algos for kConv nodes alone).
    if (nd.kind == nn::OpKind::kConv) {
      if (quant_algo(p.algo) && !int8) {
        add_finding(report, CheckId::kPrecisionBoundary, i,
                    "quantized algorithm planned under a float "
                    "precision");
      }
      if (p.algo == nn::ConvAlgo::kWinograd) {
        // F(2×2, 3×3): the transform matrices are derived for 3×3
        // stride-1 kernels; anything else computes a different conv.
        if (nd.kernel != 3 || nd.stride != 1) {
          add_finding(report, CheckId::kShapeLegality, i,
                      "Winograd planned for a " + std::to_string(nd.kernel) +
                          "×" + std::to_string(nd.kernel) + " stride-" +
                          std::to_string(nd.stride) +
                          " conv (needs 3×3 stride 1)");
        }
        if (int8) {
          add_finding(report, CheckId::kShapeLegality, i,
                      "Winograd planned under kInt8 — no quantized "
                      "transform exists");
        }
      }
      if (p.algo == nn::ConvAlgo::kDirectGemm &&
          (nd.kernel != 1 || nd.stride != 1 || nd.pad != 0)) {
        add_finding(report, CheckId::kShapeLegality, i,
                    "direct GEMM treats the input as the column matrix, "
                    "which only holds for 1×1 stride-1 pad-0");
      }
    }

    // Storage typing.
    if (p.storage != nn::WeightStorage::kDense) {
      if (!weighted) {
        add_finding(report, CheckId::kStorageTyping, i,
                    "compressed weight storage on a node with no "
                    "weights");
      } else if (int8) {
        add_finding(report, CheckId::kStorageTyping, i,
                    "compressed storage under kInt8 — the quantized "
                    "kernels read dense panels");
      } else if (nd.kind == nn::OpKind::kConv &&
                 p.algo != nn::ConvAlgo::kIm2colGemm &&
                 p.algo != nn::ConvAlgo::kDirectGemm) {
        add_finding(report, CheckId::kStorageTyping, i,
                    std::string("storage ") +
                        nn::weight_storage_name(p.storage) +
                        " on algo " + nn::conv_algo_name(p.algo) +
                        " — only the im2col/direct GEMMs read "
                        "compressed panels");
      }
    }
    if (!snap.panels.empty() && weighted) {
      const PanelRecord& pr = snap.panels[ui];
      switch (p.storage) {
        case nn::WeightStorage::kDense:
          break;
        case nn::WeightStorage::kHalf:
          if (!pr.half) {
            add_finding(report, CheckId::kStorageTyping, i,
                        "plan wants half storage but no half panels are "
                        "packed");
          }
          break;
        case nn::WeightStorage::kSparse:
          if (!pr.sparse || pr.sparse_half) {
            add_finding(report, CheckId::kStorageTyping, i,
                        "plan wants sparse fp32 panels but the packed "
                        "sparse state is " +
                            std::string(pr.sparse ? "half-valued"
                                                  : "missing"));
          }
          break;
        case nn::WeightStorage::kSparseHalf:
          if (!pr.sparse || !pr.sparse_half) {
            add_finding(report, CheckId::kStorageTyping, i,
                        "plan wants sparse half panels but the packed "
                        "sparse state is " +
                            std::string(pr.sparse ? "fp32-valued"
                                                  : "missing"));
          }
          break;
      }
      if (nd.kind == nn::OpKind::kConv &&
          p.algo == nn::ConvAlgo::kWinograd && !pr.winograd) {
        add_finding(report, CheckId::kStorageTyping, i,
                    "Winograd planned but the transformed weight panels "
                    "were never packed");
      }
    }

    // Shape re-inference on the fused-relevant edges.
    const nn::FeatShape out = snap.graph.shape(i);
    if (nd.kind == nn::OpKind::kConv && !nd.inputs.empty()) {
      const nn::FeatShape in0 = snap.graph.shape(nd.inputs[0]);
      const int h = (in0.h + 2 * nd.pad - nd.kernel) / nd.stride + 1;
      const int w = (in0.w + 2 * nd.pad - nd.kernel) / nd.stride + 1;
      if (out.c != nd.out_c || out.h != h || out.w != w) {
        add_finding(report, CheckId::kShapeLegality, i,
                    "recorded conv output shape disagrees with the "
                    "re-derived geometry");
      }
    } else if (nd.kind == nn::OpKind::kAdd && nd.inputs.size() == 2) {
      if (!(snap.graph.shape(nd.inputs[0]) == out) ||
          !(snap.graph.shape(nd.inputs[1]) == out)) {
        add_finding(report, CheckId::kShapeLegality, i,
                    "elementwise add over mismatched shapes");
      }
    } else if (nd.kind == nn::OpKind::kConcat) {
      int c = 0;
      bool hw_ok = true;
      for (int s : nd.inputs) {
        const nn::FeatShape si = snap.graph.shape(s);
        c += si.c;
        hw_ok = hw_ok && si.h == out.h && si.w == out.w;
      }
      if (!hw_ok || c != out.c) {
        add_finding(report, CheckId::kShapeLegality, i,
                    "concat channel/spatial layout disagrees with its "
                    "inputs");
      }
    }
  }

  // --- INT8 residency rules -----------------------------------------
  if (int8) {
    // The quantized engine keeps one u8 buffer per node; fusion's
    // shared-buffer machinery is a float-path feature.
    if (snap.fusion.planned) {
      add_finding(report, CheckId::kPrecisionBoundary, -1,
                  "arena-planned activations under kInt8");
    }
    for (int i = 0; i < n; ++i) {
      const nn::NodeFusion& f = snap.fusion.nodes[static_cast<std::size_t>(i)];
      if (f.place_parent != -1 || f.skip || f.residual_add) {
        add_finding(report, CheckId::kPrecisionBoundary, i,
                    "fusion/placement decision under kInt8 — the "
                    "quantized path keeps per-node buffers");
        break;
      }
    }
  }
  if (int8 && !snap.quant.empty()) {
    const std::vector<int>& outs = snap.graph.outputs();
    for (int i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const nn::Node& nd = snap.graph.node(i);
      if (nd.kind == nn::OpKind::kConv && quant_algo(snap.plan.nodes[ui].algo)
          && !snap.quant[ui].quantized) {
        add_finding(report, CheckId::kPrecisionBoundary, i,
                    "quantized algorithm planned but no quantized layer "
                    "state exists — the float fallback would read a "
                    "possibly-stale float view");
      }
      if (!snap.quant[ui].emit_u8) continue;
      if (!snap.quant[ui].quantized || nd.kind != nn::OpKind::kConv) {
        add_finding(report, CheckId::kPrecisionBoundary, i,
                    "u8 emission on a node the INT8 path never writes");
        continue;
      }
      if (std::find(outs.begin(), outs.end(), i) != outs.end()) {
        add_finding(report, CheckId::kPrecisionBoundary, i,
                    "u8-resident node is a graph output — the caller "
                    "expects float");
      }
      bool consumed = false;
      for (int t = i + 1; t < n; ++t) {
        const nn::Node& tn = snap.graph.node(t);
        if (std::find(tn.inputs.begin(), tn.inputs.end(), i) ==
            tn.inputs.end())
          continue;
        consumed = true;
        if (!reads_u8(snap, t)) {
          add_finding(report, CheckId::kPrecisionBoundary, i,
                      "u8-resident output feeds node " + std::to_string(t) +
                          ", which reads float (dropped dequant)");
        }
      }
      if (!consumed) {
        add_finding(report, CheckId::kPrecisionBoundary, i,
                    "u8-resident output has no consumers — emission "
                    "should be off");
      }
    }
  }
}

void check_coverage(const PlanSnapshot& snap, Report& report) {
  const int n = snap.graph.node_count();

  // --- Outputs produced ---------------------------------------------
  std::vector<char> written_by_fold(static_cast<std::size_t>(n), 0);
  for (int c = 0; c < n; ++c) {
    const nn::NodeFusion& cf = snap.fusion.nodes[static_cast<std::size_t>(c)];
    if (cf.residual_add && cf.residual_out >= 0 && cf.residual_out < n)
      written_by_fold[static_cast<std::size_t>(cf.residual_out)] = 1;
  }
  for (int o : snap.graph.outputs()) {
    if (o < 0 || o >= n) {
      add_finding(report, CheckId::kReachability, o,
                  "graph output index out of range");
      continue;
    }
    const std::size_t ou = static_cast<std::size_t>(o);
    if (snap.fusion.nodes[ou].skip && written_by_fold[ou] == 0) {
      add_finding(report, CheckId::kReachability, o,
                  "graph output is skipped and no fold writes it — it "
                  "is never produced");
    }
  }

  // --- Checksum coverage --------------------------------------------
  if (!snap.panels.empty()) {
    for (int i = 0; i < n; ++i) {
      const std::size_t ui = static_cast<std::size_t>(i);
      const nn::OpKind kind = snap.graph.node(i).kind;
      const PanelRecord& pr = snap.panels[ui];
      if (kind == nn::OpKind::kConv || kind == nn::OpKind::kLinear) {
        if (!pr.dense || pr.dense_crc == 0) {
          add_finding(report, CheckId::kChecksumCoverage, i,
                      pr.dense ? "dense panels live without a CRC32 "
                                 "record — corruption is undetectable"
                               : "weighted node carries no packed dense "
                                 "panels");
        }
      }
      if (pr.sparse && pr.sparse_crc == 0) {
        add_finding(report, CheckId::kChecksumCoverage, i,
                    "sparse panels live without a CRC32 record");
      }
      if (pr.half && pr.half_crc == 0) {
        add_finding(report, CheckId::kChecksumCoverage, i,
                    "half panels live without a CRC32 record");
      }
    }
  }

  // --- Summary-counter agreement ------------------------------------
  // Recounted from the per-node plans with the same definitions the
  // plan advertises; drift means a stale or half-rebuilt summary.
  int conv = 0, wino = 0, direct = 0, im2col = 0, quant = 0, fused = 0;
  int sparse = 0, fp16 = 0, residual = 0, concat_elided = 0;
  std::size_t naive_floats = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    const nn::OpKind kind = snap.graph.node(i).kind;
    const nn::ConvPlan& p = snap.plan.nodes[ui];
    naive_floats += static_cast<std::size_t>(snap.max_batch) *
                    snap.graph.shape(i).numel();
    if (kind == nn::OpKind::kConv || kind == nn::OpKind::kLinear) {
      if (p.storage == nn::WeightStorage::kSparse ||
          p.storage == nn::WeightStorage::kSparseHalf)
        ++sparse;
      if (p.storage == nn::WeightStorage::kHalf ||
          p.storage == nn::WeightStorage::kSparseHalf)
        ++fp16;
    }
    const nn::NodeFusion& f = snap.fusion.nodes[ui];
    if (f.residual_add) ++residual;
    if (f.place_parent >= 0 && f.place_parent < n &&
        snap.graph.node(f.place_parent).kind == nn::OpKind::kConcat)
      ++concat_elided;
    if (kind != nn::OpKind::kConv) continue;
    ++conv;
    switch (p.algo) {
      case nn::ConvAlgo::kWinograd: ++wino; break;
      case nn::ConvAlgo::kDirectGemm: ++direct; break;
      case nn::ConvAlgo::kIm2colQuant: ++quant; break;
      case nn::ConvAlgo::kIm2colGemm: ++im2col; break;
      case nn::ConvAlgo::kIm2colFused: ++fused; break;
      case nn::ConvAlgo::kIm2colQuantFused:
        ++quant;
        ++fused;
        break;
    }
  }
  auto expect = [&](int got, int want, const char* what) {
    if (got != want) {
      add_finding(report, CheckId::kPlanCounters, -1,
                  std::string(what) + " counter says " +
                      std::to_string(got) + ", per-node contents say " +
                      std::to_string(want));
    }
  };
  expect(snap.plan.conv_nodes, conv, "conv_nodes");
  expect(snap.plan.winograd_nodes, wino, "winograd_nodes");
  expect(snap.plan.direct_nodes, direct, "direct_nodes");
  expect(snap.plan.im2col_nodes, im2col, "im2col_nodes");
  expect(snap.plan.quant_nodes, quant, "quant_nodes");
  expect(snap.plan.fused_nodes, fused, "fused_nodes");
  expect(snap.plan.sparse_nodes, sparse, "sparse_nodes");
  expect(snap.plan.fp16_nodes, fp16, "fp16_nodes");
  expect(snap.plan.residual_fused, residual, "residual_fused");
  expect(snap.plan.concat_elided, concat_elided, "concat_elided");
  expect(snap.fusion.residual_fused, residual, "fusion residual_fused");
  expect(snap.fusion.concat_elided, concat_elided, "fusion concat_elided");
  expect(snap.plan.max_batch, snap.max_batch, "max_batch");
  if (snap.fusion.naive_floats != naive_floats) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "naive peak says " +
                    std::to_string(snap.fusion.naive_floats) +
                    " floats, per-node shapes sum to " +
                    std::to_string(naive_floats));
  }
  if (snap.plan.arena_peak_bytes_before !=
      snap.fusion.naive_floats * sizeof(float)) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "arena_peak_bytes_before disagrees with the fusion "
                "plan's naive peak");
  }
  if (snap.plan.arena_peak_bytes_after !=
      snap.fusion.arena_floats * sizeof(float)) {
    add_finding(report, CheckId::kPlanCounters, -1,
                "arena_peak_bytes_after disagrees with the fusion "
                "plan's arena size");
  }
}

}  // namespace ocb::verify::detail
