#include "verify/plan_mutator.hpp"

#include <algorithm>
#include <vector>

#include "core/rng.hpp"

namespace ocb::verify {

namespace {

int pick_node(Rng& rng, const std::vector<int>& candidates) {
  return candidates[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(candidates.size()) - 1))];
}

/// Root + within-image offset via the same chain walk the planner
/// applies (fine here: the mutator *constructs* defects, it never
/// certifies anything).
int root_of(const nn::MemoryPlan& mp, int node, std::size_t* off) {
  return mp.root_of(node, off);
}

/// Adjust the plan's algo counters when a conv node moves from `from`
/// to `to`, so a geometry defect doesn't also read as counter drift.
void recount_algo(nn::ExecutionPlan& plan, nn::ConvAlgo from,
                  nn::ConvAlgo to) {
  auto bucket = [&plan](nn::ConvAlgo a) -> int* {
    switch (a) {
      case nn::ConvAlgo::kWinograd: return &plan.winograd_nodes;
      case nn::ConvAlgo::kDirectGemm: return &plan.direct_nodes;
      case nn::ConvAlgo::kIm2colGemm: return &plan.im2col_nodes;
      case nn::ConvAlgo::kIm2colFused: return &plan.fused_nodes;
      case nn::ConvAlgo::kIm2colQuant: return &plan.quant_nodes;
      case nn::ConvAlgo::kIm2colQuantFused: return nullptr;  // two buckets
    }
    return nullptr;
  };
  if (int* b = bucket(from)) --*b;
  if (int* b = bucket(to)) ++*b;
}

}  // namespace

const PlanDefect* all_defects() noexcept {
  static const PlanDefect kAll[kDefectCount] = {
      PlanDefect::kOverlappingPlacement, PlanDefect::kArenaOverflow,
      PlanDefect::kDanglingView,         PlanDefect::kPlacementCycle,
      PlanDefect::kConcatOffsetSkew,     PlanDefect::kOrphanSkip,
      PlanDefect::kActivationReorder,    PlanDefect::kIncapableFold,
      PlanDefect::kAliasOverwrite,       PlanDefect::kDroppedDequant,
      PlanDefect::kStorageMismatch,      PlanDefect::kIllegalWinograd,
      PlanDefect::kMissingChecksum,      PlanDefect::kCounterDrift,
  };
  return kAll;
}

const char* defect_name(PlanDefect defect) noexcept {
  switch (defect) {
    case PlanDefect::kOverlappingPlacement: return "overlapping-placement";
    case PlanDefect::kArenaOverflow: return "arena-overflow";
    case PlanDefect::kDanglingView: return "dangling-view";
    case PlanDefect::kPlacementCycle: return "placement-cycle";
    case PlanDefect::kConcatOffsetSkew: return "concat-offset-skew";
    case PlanDefect::kOrphanSkip: return "orphan-skip";
    case PlanDefect::kActivationReorder: return "activation-reorder";
    case PlanDefect::kIncapableFold: return "incapable-fold";
    case PlanDefect::kAliasOverwrite: return "alias-overwrite";
    case PlanDefect::kDroppedDequant: return "dropped-dequant";
    case PlanDefect::kStorageMismatch: return "storage-mismatch";
    case PlanDefect::kIllegalWinograd: return "illegal-winograd";
    case PlanDefect::kMissingChecksum: return "missing-checksum";
    case PlanDefect::kCounterDrift: return "counter-drift";
  }
  return "unknown";
}

CheckId expected_check(PlanDefect defect) noexcept {
  switch (defect) {
    case PlanDefect::kOverlappingPlacement: return CheckId::kLivenessOverlap;
    case PlanDefect::kArenaOverflow: return CheckId::kViewBounds;
    case PlanDefect::kDanglingView: return CheckId::kViewBounds;
    case PlanDefect::kPlacementCycle: return CheckId::kPlacementChain;
    case PlanDefect::kConcatOffsetSkew: return CheckId::kPlacementChain;
    case PlanDefect::kOrphanSkip: return CheckId::kFusionSkip;
    case PlanDefect::kActivationReorder: return CheckId::kFusionEpilogue;
    case PlanDefect::kIncapableFold: return CheckId::kFusionCapability;
    case PlanDefect::kAliasOverwrite: return CheckId::kFusionAlias;
    case PlanDefect::kDroppedDequant: return CheckId::kPrecisionBoundary;
    case PlanDefect::kStorageMismatch: return CheckId::kStorageTyping;
    case PlanDefect::kIllegalWinograd: return CheckId::kShapeLegality;
    case PlanDefect::kMissingChecksum: return CheckId::kChecksumCoverage;
    case PlanDefect::kCounterDrift: return CheckId::kPlanCounters;
  }
  return CheckId::kPlanCounters;
}

bool plant_defect(PlanSnapshot& snap, PlanDefect defect,
                  std::uint64_t seed) {
  Rng rng(hash_combine(seed, static_cast<std::uint64_t>(defect)));
  const int n = snap.graph.node_count();

  switch (defect) {
    case PlanDefect::kOverlappingPlacement: {
      // Collapse a producer's arena offset onto a consumer's: the two
      // buffers are necessarily live together at the consumer's index.
      if (!snap.fusion.planned) return false;
      struct Pair {
        int a, b;
      };
      std::vector<Pair> pairs;
      for (int j = 0; j < n; ++j) {
        if (snap.fusion.nodes[static_cast<std::size_t>(j)].skip) continue;
        const int rj = root_of(snap.fusion, j, nullptr);
        for (int s : snap.graph.node(j).inputs) {
          const int rs = root_of(snap.fusion, s, nullptr);
          if (rs != rj) pairs.push_back(Pair{rj, rs});
        }
      }
      if (pairs.empty()) return false;
      const Pair p = pairs[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(pairs.size()) - 1))];
      snap.fusion.offsets[static_cast<std::size_t>(p.a)] =
          snap.fusion.offsets[static_cast<std::size_t>(p.b)];
      return true;
    }

    case PlanDefect::kArenaOverflow: {
      if (!snap.fusion.planned) return false;
      // Shrink the arena below the largest root block.
      std::size_t largest = 0;
      for (int i = 0; i < n; ++i) {
        if (snap.fusion.nodes[static_cast<std::size_t>(i)].place_parent !=
            -1)
          continue;
        const std::size_t extent =
            snap.fusion.offsets[static_cast<std::size_t>(i)] +
            static_cast<std::size_t>(snap.max_batch) *
                snap.graph.shape(i).numel();
        largest = std::max(largest, extent);
      }
      if (largest == 0) return false;
      snap.fusion.arena_floats = largest - 1;
      // Keep the byte counters in sync so only the bounds check trips.
      snap.plan.arena_peak_bytes_after =
          snap.fusion.arena_floats * sizeof(float);
      return true;
    }

    case PlanDefect::kDanglingView: {
      std::vector<int> placed;
      for (int i = 0; i < n; ++i)
        if (snap.fusion.nodes[static_cast<std::size_t>(i)].place_parent !=
            -1)
          placed.push_back(i);
      if (placed.empty()) return false;
      const int i = pick_node(rng, placed);
      const int parent =
          snap.fusion.nodes[static_cast<std::size_t>(i)].place_parent;
      const int root = root_of(snap.fusion, parent, nullptr);
      // Push the view past the end of its root's image.
      snap.fusion.nodes[static_cast<std::size_t>(i)].place_offset_floats +=
          snap.graph.shape(root).numel();
      return true;
    }

    case PlanDefect::kPlacementCycle: {
      std::vector<int> placed;
      for (int i = 0; i < n; ++i)
        if (snap.fusion.nodes[static_cast<std::size_t>(i)].place_parent !=
            -1)
          placed.push_back(i);
      if (placed.empty()) return false;
      const int i = pick_node(rng, placed);
      const int parent =
          snap.fusion.nodes[static_cast<std::size_t>(i)].place_parent;
      snap.fusion.nodes[static_cast<std::size_t>(parent)].place_parent = i;
      snap.fusion.nodes[static_cast<std::size_t>(parent)]
          .place_offset_floats = 0;
      return true;
    }

    case PlanDefect::kConcatOffsetSkew: {
      std::vector<int> members;
      for (int i = 0; i < n; ++i) {
        const int parent =
            snap.fusion.nodes[static_cast<std::size_t>(i)].place_parent;
        if (parent >= 0 &&
            snap.graph.node(parent).kind == nn::OpKind::kConcat)
          members.push_back(i);
      }
      if (members.empty()) return false;
      const int i = pick_node(rng, members);
      nn::NodeFusion& f = snap.fusion.nodes[static_cast<std::size_t>(i)];
      // One float off its channel slot: the concat's skipped copy now
      // reassembles a shifted feature map.
      f.place_offset_floats = f.place_offset_floats > 0
                                  ? f.place_offset_floats - 1
                                  : f.place_offset_floats + 1;
      return true;
    }

    case PlanDefect::kOrphanSkip: {
      std::vector<int> candidates;
      for (int i = 0; i < n; ++i) {
        const nn::NodeFusion& f =
            snap.fusion.nodes[static_cast<std::size_t>(i)];
        if (f.skip || f.residual_add) continue;
        if (snap.graph.node(i).kind == nn::OpKind::kAdd) continue;
        if (snap.graph.node(i).kind == nn::OpKind::kInput) continue;
        candidates.push_back(i);
      }
      if (candidates.empty()) return false;
      snap.fusion.nodes[static_cast<std::size_t>(pick_node(rng, candidates))]
          .skip = true;
      return true;
    }

    case PlanDefect::kActivationReorder: {
      std::vector<int> folds;
      for (int c = 0; c < n; ++c)
        if (snap.fusion.nodes[static_cast<std::size_t>(c)].residual_add)
          folds.push_back(c);
      if (folds.empty()) return false;
      nn::NodeFusion& f =
          snap.fusion.nodes[static_cast<std::size_t>(pick_node(rng, folds))];
      f.mode = f.mode == EpiMode::kAccThenAct ? EpiMode::kActThenAcc
                                              : EpiMode::kAccThenAct;
      return true;
    }

    case PlanDefect::kIncapableFold: {
      std::vector<int> folds;
      for (int c = 0; c < n; ++c)
        if (snap.fusion.nodes[static_cast<std::size_t>(c)].residual_add)
          folds.push_back(c);
      if (folds.empty()) return false;
      const int c = pick_node(rng, folds);
      nn::ConvPlan& p = snap.plan.nodes[static_cast<std::size_t>(c)];
      p.storage = nn::WeightStorage::kSparse;
      snap.fusion.nodes[static_cast<std::size_t>(c)].upgrade_fused = false;
      ++snap.plan.sparse_nodes;  // stay counter-consistent
      return true;
    }

    case PlanDefect::kAliasOverwrite: {
      // Alias a fold whose residual operand is still read after the
      // conv — exactly the case the planner must never alias.
      std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j)
        for (int s : snap.graph.node(j).inputs)
          consumers[static_cast<std::size_t>(s)].push_back(j);
      std::vector<int> candidates;
      for (int c = 0; c < n; ++c) {
        const nn::NodeFusion& cf =
            snap.fusion.nodes[static_cast<std::size_t>(c)];
        if (!cf.residual_add) continue;
        const int a = cf.residual_out;
        const int src = cf.residual_src;
        if (snap.fusion.nodes[static_cast<std::size_t>(a)].place_parent !=
            -1)
          continue;  // already aliased (legally)
        bool late_reader = false;
        for (int t : consumers[static_cast<std::size_t>(src)])
          if (t != a && t >= c) late_reader = true;
        if (late_reader) candidates.push_back(c);
      }
      if (candidates.empty()) return false;
      const int c = pick_node(rng, candidates);
      const nn::NodeFusion& cf =
          snap.fusion.nodes[static_cast<std::size_t>(c)];
      nn::NodeFusion& af =
          snap.fusion.nodes[static_cast<std::size_t>(cf.residual_out)];
      af.place_parent = cf.residual_src;
      af.place_offset_floats = 0;
      return true;
    }

    case PlanDefect::kDroppedDequant: {
      if (snap.precision != nn::Precision::kInt8 || snap.quant.empty())
        return false;
      std::vector<int> emitters;
      for (int i = 0; i < n; ++i)
        if (snap.quant[static_cast<std::size_t>(i)].emit_u8)
          emitters.push_back(i);
      if (emitters.empty()) return false;
      const int i = pick_node(rng, emitters);
      // Flip one of its readers back to the float path: the reader now
      // consumes raw u8 bytes through the float view.
      for (int t = i + 1; t < n; ++t) {
        const nn::Node& tn = snap.graph.node(t);
        if (std::find(tn.inputs.begin(), tn.inputs.end(), i) ==
            tn.inputs.end())
          continue;
        snap.quant[static_cast<std::size_t>(t)] = QuantRecord{};
        return true;
      }
      return false;
    }

    case PlanDefect::kStorageMismatch: {
      if (snap.panels.empty()) return false;
      std::vector<int> candidates;
      for (int i = 0; i < n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        const nn::OpKind kind = snap.graph.node(i).kind;
        // Any node whose kernel legally reads sparse panels: linears
        // always, convs on the im2col/direct GEMMs.
        const bool sparse_capable =
            kind == nn::OpKind::kLinear ||
            (kind == nn::OpKind::kConv &&
             (snap.plan.nodes[ui].algo == nn::ConvAlgo::kIm2colGemm ||
              snap.plan.nodes[ui].algo == nn::ConvAlgo::kDirectGemm));
        if (!sparse_capable) continue;
        if (snap.fusion.nodes[ui].residual_add) continue;
        if (snap.plan.nodes[ui].storage != nn::WeightStorage::kDense)
          continue;
        if (snap.panels[ui].sparse) continue;
        candidates.push_back(i);
      }
      if (candidates.empty()) return false;
      const int i = pick_node(rng, candidates);
      snap.plan.nodes[static_cast<std::size_t>(i)].storage =
          nn::WeightStorage::kSparse;
      ++snap.plan.sparse_nodes;  // stay counter-consistent
      return true;
    }

    case PlanDefect::kIllegalWinograd: {
      std::vector<int> candidates;
      for (int i = 0; i < n; ++i) {
        const std::size_t ui = static_cast<std::size_t>(i);
        const nn::Node& nd = snap.graph.node(i);
        if (nd.kind != nn::OpKind::kConv) continue;
        if (nd.kernel == 3 && nd.stride == 1) continue;  // would be legal
        if (snap.plan.nodes[ui].storage != nn::WeightStorage::kDense)
          continue;
        if (snap.fusion.nodes[ui].residual_add) continue;
        candidates.push_back(i);
      }
      if (candidates.empty()) return false;
      const int i = pick_node(rng, candidates);
      nn::ConvPlan& p = snap.plan.nodes[static_cast<std::size_t>(i)];
      recount_algo(snap.plan, p.algo, nn::ConvAlgo::kWinograd);
      p.algo = nn::ConvAlgo::kWinograd;
      return true;
    }

    case PlanDefect::kMissingChecksum: {
      if (snap.panels.empty()) return false;
      std::vector<int> candidates;
      for (int i = 0; i < n; ++i) {
        const PanelRecord& pr = snap.panels[static_cast<std::size_t>(i)];
        if (pr.dense && pr.dense_crc != 0) candidates.push_back(i);
      }
      if (candidates.empty()) return false;
      snap.panels[static_cast<std::size_t>(pick_node(rng, candidates))]
          .dense_crc = 0;
      return true;
    }

    case PlanDefect::kCounterDrift: {
      ++snap.plan.winograd_nodes;
      return true;
    }
  }
  return false;
}

}  // namespace ocb::verify
