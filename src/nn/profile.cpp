#include "nn/profile.hpp"

namespace ocb::nn {

double ModelProfile::total_flops() const noexcept {
  double total = 0.0;
  for (const auto& l : layers) total += l.flops;
  return total;
}

std::size_t ModelProfile::total_params() const noexcept {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.params;
  return total;
}

std::size_t ModelProfile::total_weight_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.weight_bytes;
  return total;
}

std::size_t ModelProfile::total_activation_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& l : layers) total += l.in_bytes + l.out_bytes;
  return total;
}

std::size_t ModelProfile::kernel_count() const noexcept {
  std::size_t count = 0;
  for (const auto& l : layers)
    if (l.kind != OpKind::kInput) ++count;
  return count;
}

ModelProfile profile_graph(const Graph& graph, const std::string& model_name) {
  ModelProfile profile;
  profile.model_name = model_name;
  const FeatShape in = graph.input_shape();
  profile.input_h = in.h;
  profile.input_w = in.w;
  profile.layers.reserve(static_cast<std::size_t>(graph.node_count()));

  for (int i = 0; i < graph.node_count(); ++i) {
    const Node& nd = graph.node(i);
    LayerProfile layer;
    layer.name = nd.name.empty() ? op_name(nd.kind) : nd.name;
    layer.kind = nd.kind;
    layer.flops = graph.node_flops(i);
    layer.params = graph.node_params(i);
    layer.weight_bytes = layer.params * sizeof(float);
    std::size_t in_elems = 0;
    for (int src : nd.inputs) in_elems += graph.shape(src).numel();
    layer.in_bytes = in_elems * sizeof(float);
    layer.out_bytes = graph.shape(i).numel() * sizeof(float);
    profile.layers.push_back(std::move(layer));
  }
  return profile;
}

}  // namespace ocb::nn
