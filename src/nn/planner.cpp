#include "nn/planner.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.hpp"
#include "tensor/winograd.hpp"

namespace ocb::nn {
namespace {

/// Modelled milliseconds for one packed fp32 GEMM of [m×k]·[k×n],
/// including the fixed dispatch overhead. Throughput is derated for
/// micro-kernel tile quantization (6×16 tiles; ragged edges idle
/// lanes) and short-loop amortization in n and k.
bool storage_half(WeightStorage storage) noexcept {
  return storage == WeightStorage::kHalf ||
         storage == WeightStorage::kSparseHalf;
}

bool storage_sparse(WeightStorage storage) noexcept {
  return storage == WeightStorage::kSparse ||
         storage == WeightStorage::kSparseHalf;
}

/// Weight-panel bytes one GEMM pass streams for an m×k matrix in the
/// given storage. Dense/half panels are row-tile padded; sparse panels
/// pay 4 index bytes plus kRowTile values per surviving column.
double weight_panel_bytes(std::size_t m, std::size_t k, WeightStorage storage,
                          double density) noexcept {
  constexpr double kTile = static_cast<double>(PackedA::kRowTile);
  const double m_t = static_cast<double>((m + PackedA::kRowTile - 1) /
                                         PackedA::kRowTile) *
                     kTile;
  const double cols = m_t / kTile * static_cast<double>(k);
  const double value_bytes = storage_half(storage) ? 2.0 : 4.0;
  double per_col = kTile * value_bytes;
  if (storage_sparse(storage)) per_col = density * (per_col + 4.0);
  return cols * per_col;
}

/// Modelled milliseconds for one packed GEMM of [m×k]·[k×n] in the
/// given weight storage, including the fixed dispatch overhead.
/// Compute: effective FLOPs (dense FLOPs × surviving density) over a
/// sustained-throughput estimate derated for micro-kernel tile
/// quantization (6×16 tiles; ragged edges idle lanes), short-loop
/// amortization in n and k, and the compressed kernels' per-group
/// widening/indirection cost. Bandwidth: the weight panels themselves
/// must stream once per pass — max(compute, traffic) models the
/// overlap, and on GEMV-like shapes the traffic term dominates, which
/// is what makes half storage worth picking there.
double gemm_storage_ms(std::size_t m, std::size_t k, std::size_t n,
                       const KernelCostModel& model, WeightStorage storage,
                       double density) noexcept {
  if (m == 0 || k == 0 || n == 0) return 0.0;
  const bool half = storage_half(storage);
  const bool sparse = storage_sparse(storage);
  const double d =
      sparse ? std::clamp(density, 0.02, 1.0) : 1.0;
  double scale = 1.0;
  if (half)
    scale *= model.half_compute_scale > 0.0 ? model.half_compute_scale : 0.9;
  if (sparse)
    scale *= model.sparse_compute_scale > 0.0 ? model.sparse_compute_scale
                                              : 0.85;
  const double flops = 2.0 * static_cast<double>(m) *
                       static_cast<double>(k) * static_cast<double>(n) * d;
  const double tile_m =
      static_cast<double>((m + PackedA::kRowTile - 1) / PackedA::kRowTile *
                          PackedA::kRowTile);
  const double tile_n = static_cast<double>((n + 15) / 16 * 16);
  const double ramp_k =
      static_cast<double>(k) / (static_cast<double>(k) + 8.0);
  // n-direction efficiency: column-tile quantization times short-loop
  // ramp. These model the *dense* kernel, whose remainder columns fall
  // to a scalar latency chain. The compressed kernels' tails instead
  // flip lanes across the row tile (see sgemm_sparse_avx2.cpp), so on
  // GEMV-like shapes they keep a large fraction of peak — floor their
  // efficiency rather than inheriting the dense collapse.
  double n_eff = (static_cast<double>(n) / tile_n) *
                 (static_cast<double>(n) / (static_cast<double>(n) + 48.0));
  if (half || sparse) n_eff = std::max(n_eff, 0.25);
  const double gflops =
      std::max(0.05, model.gemm_gflops * scale *
                         (static_cast<double>(m) / tile_m) * n_eff * ramp_k);
  double ms = flops / (gflops * 1e6);
  if (model.weight_gbps > 0.0) {
    const double traffic_ms = weight_panel_bytes(m, k, storage, d) /
                              (model.weight_gbps * 1e6);
    ms = std::max(ms, traffic_ms);
  }
  return ms + model.gemm_overhead_us * 1e-3;
}

double gemm_ms(std::size_t m, std::size_t k, std::size_t n,
               const KernelCostModel& model) noexcept {
  return gemm_storage_ms(m, k, n, model, WeightStorage::kDense, 1.0);
}

double copy_ms(double bytes, double gbps) noexcept {
  return bytes / (std::max(0.05, gbps) * 1e6);
}

/// Effective bandwidth for the fused candidates' stripe-panel traffic.
/// A zero cache_gbps (older aggregate-initialised models) derives one
/// from mem_gbps: the panels are sized to sit in L2, which on every
/// machine class we model is a small multiple of streaming bandwidth.
double cache_gbps_of(const KernelCostModel& model) noexcept {
  return model.cache_gbps > 0.0 ? model.cache_gbps
                                : 3.0 * std::max(0.05, model.mem_gbps);
}

/// Column windows under this size are priced as cache-resident: their
/// write and read-back never leave the fast levels. Mirrors the fused
/// stripe budget in tensor/gemm.cpp (fused_panel_cols), which packs to
/// the same bound — the two must agree on where "resident" ends or the
/// planner would price stripes the packer cannot actually hold.
constexpr double kCacheResidentBytes = 3.0 * 512.0 * 1024.0;

/// Streaming rate of the level *behind* the resident cache (the big
/// shared cache / DRAM blend the B-panel re-walks hit). Sequential
/// streams there run well above the gathered-copy rate mem_gbps but
/// below the resident-panel rate doubled is the calibrated middle.
double rewalk_gbps_of(const KernelCostModel& model) noexcept {
  return 2.0 * cache_gbps_of(model);
}

/// The packed GEMM drivers walk the whole B matrix once per A row
/// panel (6 rows on the AVX2 kernel). Re-walk traffic beyond the first
/// pass is free while B sits in cache and streams from the outer
/// levels once it does not — the term that makes the materialized and
/// fused candidates diverge on exactly the bandwidth-bound shapes.
double b_rewalk_ms(double b_bytes, int out_c,
                   const KernelCostModel& model) noexcept {
  if (b_bytes <= kCacheResidentBytes) return 0.0;
  const double panels = std::ceil(static_cast<double>(out_c) / 6.0);
  if (panels <= 1.0) return 0.0;
  return copy_ms((panels - 1.0) * b_bytes, rewalk_gbps_of(model));
}

}  // namespace

KernelCostModel KernelCostModel::defaults(simd::Level level) noexcept {
  // Calibrated against bench/baselines/BENCH_kernels.json and
  // BENCH_planner.json for this repo's reference machine: the AVX2
  // packed GEMM sustains ~19–29 GFLOP/s on engine-sized shapes, the
  // scalar fallback ~2–4, and the u8×s8 path lands 1.7–3.5× above SIMD
  // fp32. The transform rate is the effective byte throughput of the
  // winograd tile transforms: the AVX2 8-tile block kernel
  // (winograd_avx2.cpp) streams ~10 GB/s, the scalar per-tile code
  // (gather + ~70 flops + scattered stores per tile-channel) ~3.
  // The storage fields are calibrated against BENCH_pareto.json: packed
  // weight panels stream at roughly the copy rate plus cache reuse; the
  // half kernel loses a little throughput to the per-group widening
  // (one convert + store feeding 12 FMAs), the sparse kernel to the
  // index indirection; the scalar half path converts element-wise and
  // is priced accordingly.
  KernelCostModel m;
  if (level == simd::Level::kAvx2) {
    m.gemm_gflops = 22.0;
    m.int8_gops = 55.0;
    m.mem_gbps = 8.0;
    m.transform_gbps = 10.0;
    m.gemm_overhead_us = 1.5;
    m.weight_gbps = 12.0;
    m.half_compute_scale = 0.92;
    m.sparse_compute_scale = 0.85;
    m.cache_gbps = 24.0;
  } else {
    m.gemm_gflops = 2.8;
    m.int8_gops = 6.0;
    m.mem_gbps = 6.0;
    m.transform_gbps = 3.0;
    m.gemm_overhead_us = 1.0;
    m.weight_gbps = 6.0;
    m.half_compute_scale = 0.5;
    m.sparse_compute_scale = 0.95;
    m.cache_gbps = 12.0;
  }
  return m;
}

KernelCostModel KernelCostModel::from_roofline(
    double eff_gflops, double eff_bw_gbps, double kernel_overhead_us,
    double int8_speedup) noexcept {
  KernelCostModel m;
  m.gemm_gflops = eff_gflops;
  m.int8_gops = eff_gflops * std::max(1.0, int8_speedup);
  m.mem_gbps = eff_bw_gbps;
  // Tile transforms are scalar address arithmetic, not streaming
  // copies; they reach a fraction of the device's effective bandwidth.
  m.transform_gbps = eff_bw_gbps / 3.0;
  m.gemm_overhead_us = kernel_overhead_us;
  m.weight_gbps = eff_bw_gbps;
  m.half_compute_scale = 0.9;
  m.sparse_compute_scale = 0.85;
  m.cache_gbps = eff_bw_gbps * 3.0;
  return m;
}

bool winograd_applicable(const ConvPlanKey& key) noexcept {
  // Winograd panels are dense fp32; under kFp16 it competes as a legal
  // fallback candidate (half storage only shrinks the direct/im2col
  // panels, and the model decides which wins).
  return key.kernel == 3 && key.stride == 1 &&
         (key.precision == Precision::kFp32 ||
          key.precision == Precision::kFp16);
}

bool direct_applicable(const ConvPlanKey& key) noexcept {
  return key.kernel == 1 && key.stride == 1 && key.pad == 0;
}

double est_im2col_storage_ms(const ConvPlanKey& key,
                             const KernelCostModel& model,
                             WeightStorage storage, double density) noexcept {
  const ConvGeometry geom = key.geometry();
  const double rows = static_cast<double>(geom.col_rows());
  const double n_tot = static_cast<double>(geom.col_cols()) * key.batch;
  const double col_bytes = rows * n_tot * sizeof(float);
  // Lowering: gathered read of the input window plus the column write.
  // A column matrix small enough to stay resident never pays the
  // streaming rate; past the budget both the write and the GEMM's
  // read-back go through memory, and every further A-panel pass
  // re-streams the whole matrix.
  const double lower_gbps = col_bytes <= kCacheResidentBytes
                                ? cache_gbps_of(model)
                                : model.mem_gbps;
  double ms = copy_ms(2.0 * col_bytes, lower_gbps);
  ms += b_rewalk_ms(col_bytes, key.out_c, model);
  ms += gemm_storage_ms(static_cast<std::size_t>(key.out_c), geom.col_rows(),
                        static_cast<std::size_t>(n_tot), model, storage,
                        density);
  if (key.batch > 1) {
    // Widened batches stage the GEMM result channel-major and scatter
    // it back to per-image CHW planes.
    ms += copy_ms(2.0 * key.out_c * n_tot * sizeof(float), model.mem_gbps);
  }
  return ms;
}

double est_direct_storage_ms(const ConvPlanKey& key,
                             const KernelCostModel& model,
                             WeightStorage storage, double density) noexcept {
  const ConvGeometry geom = key.geometry();
  // The input is consumed in place — no lowering, no scatter — but the
  // GEMM runs per image, so small spatial extents pay the dispatch
  // overhead batch times.
  return static_cast<double>(key.batch) *
         gemm_storage_ms(static_cast<std::size_t>(key.out_c),
                         static_cast<std::size_t>(key.in_c), geom.col_cols(),
                         model, storage, density);
}

double est_im2col_ms(const ConvPlanKey& key,
                     const KernelCostModel& model) noexcept {
  return est_im2col_storage_ms(key, model, WeightStorage::kDense, 1.0);
}

double est_direct_ms(const ConvPlanKey& key,
                     const KernelCostModel& model) noexcept {
  return est_direct_storage_ms(key, model, WeightStorage::kDense, 1.0);
}

double est_winograd_ms(const ConvPlanKey& key,
                       const KernelCostModel& model) noexcept {
  const ConvGeometry geom = key.geometry();
  const double ld =
      static_cast<double>(winograd::tile_count(geom)) * key.batch;
  // Input transform: per tile-channel, gather 16 floats and store the
  // 16 transformed values across the xi planes.
  double ms = copy_ms(32.0 * key.in_c * ld * sizeof(float),
                      model.transform_gbps);
  // 16 pointwise GEMMs of [out_c × in_c] · [in_c × tiles].
  ms += winograd::kTileElems *
        gemm_ms(static_cast<std::size_t>(key.out_c),
                static_cast<std::size_t>(key.in_c),
                static_cast<std::size_t>(ld), model);
  // Inverse transform: read 16 product values, write the 2×2 tile.
  ms += copy_ms(20.0 * key.out_c * ld * sizeof(float), model.transform_gbps);
  return ms;
}

double est_int8_ms(const ConvPlanKey& key,
                   const KernelCostModel& model) noexcept {
  const ConvGeometry geom = key.geometry();
  const double rows = static_cast<double>(geom.col_rows());
  const double n_tot = static_cast<double>(geom.col_cols()) * key.batch;
  const double in_elems = static_cast<double>(key.in_c) * key.in_h *
                          key.in_w * key.batch;
  // Activation quantization (float read + u8 write), quad-layout
  // lowering (u8 in/out), then the u8×s8 GEMM with fp32 write-back.
  // The quad matrix prices like the fp32 column matrix: resident under
  // the budget, streamed plus per-panel re-walks past it.
  const double quad_bytes = rows * n_tot;
  double ms = copy_ms(in_elems * (sizeof(float) + 1.0), model.mem_gbps);
  ms += copy_ms(2.0 * quad_bytes, quad_bytes <= kCacheResidentBytes
                                      ? cache_gbps_of(model)
                                      : model.mem_gbps);
  ms += b_rewalk_ms(quad_bytes, key.out_c, model);
  const double flops = 2.0 * key.out_c * rows * n_tot;
  const double ramp_n = n_tot / (n_tot + 48.0);
  ms += flops / (std::max(0.05, model.int8_gops * ramp_n) * 1e6) +
        model.gemm_overhead_us * 1e-3;
  return ms;
}

double est_im2col_fused_ms(const ConvPlanKey& key,
                           const KernelCostModel& model) noexcept {
  const ConvGeometry geom = key.geometry();
  const double rows = static_cast<double>(geom.col_rows());
  const double n_img = static_cast<double>(geom.col_cols());
  const double n_tot = n_img * key.batch;
  // Stripe packing still gathers the input window once from memory,
  // but the column panel it writes is stripe-sized: the write and the
  // kernel's read-back both stay cache-resident, and the materialized
  // path's full-size column write / read, A-panel re-walks and
  // (batch > 1) channel-major scatter disappear entirely.
  double ms = copy_ms(rows * n_tot * sizeof(float), model.mem_gbps);
  ms += copy_ms(2.0 * rows * n_tot * sizeof(float), cache_gbps_of(model));
  // What the stripes cost instead: one kernel dispatch per stripe and
  // one packed-A re-read per stripe beyond the first of each image.
  const double stripe_cols = std::min(
      1024.0, std::max(16.0, kCacheResidentBytes / (rows * sizeof(float))));
  const double stripes = std::ceil(n_img / stripe_cols) * key.batch;
  // gemm_ms below already charges one dispatch per image; only the
  // stripes beyond the first of each image add overhead and A re-reads.
  const double extra = std::max(0.0, stripes - key.batch);
  const double a_bytes = static_cast<double>(key.out_c) * rows * sizeof(float);
  ms += extra * model.gemm_overhead_us * 1e-3;
  ms += copy_ms(extra * a_bytes, cache_gbps_of(model));
  // The GEMM runs per image (the packer walks one CHW plane), so small
  // spatial extents pay the dispatch overhead batch times — the same
  // trade the direct candidate makes.
  ms += static_cast<double>(key.batch) *
        gemm_ms(static_cast<std::size_t>(key.out_c), geom.col_rows(),
                geom.col_cols(), model);
  return ms;
}

double est_int8_fused_ms(const ConvPlanKey& key,
                         const KernelCostModel& model) noexcept {
  const ConvGeometry geom = key.geometry();
  const double rows = static_cast<double>(geom.col_rows());
  const double n_img = static_cast<double>(geom.col_cols());
  const double n_tot = n_img * key.batch;
  const double in_elems = static_cast<double>(key.in_c) * key.in_h *
                          key.in_w * key.batch;
  // Activation quantization is unchanged; the quad lowering's u8
  // write + read drop from memory to cache bandwidth, with the
  // gathered u8 input read still paying the memory rate. Stripes add
  // one dispatch each, like the fp32 fused candidate.
  double ms = copy_ms(in_elems * (sizeof(float) + 1.0), model.mem_gbps);
  ms += copy_ms(rows * n_tot, model.mem_gbps);
  ms += copy_ms(2.0 * rows * n_tot, cache_gbps_of(model));
  const double stripe_cols =
      std::min(1024.0, std::max(16.0, kCacheResidentBytes / rows));
  ms += (std::ceil(n_img / stripe_cols) - 1.0) * key.batch *
        model.gemm_overhead_us * 1e-3;
  const double flops = 2.0 * key.out_c * rows * n_tot;
  const double ramp_n = n_img / (n_img + 48.0);
  ms += flops / (std::max(0.05, model.int8_gops * ramp_n) * 1e6) +
        static_cast<double>(key.batch) * model.gemm_overhead_us * 1e-3;
  return ms;
}

ConvPlan plan_conv(const ConvPlanKey& key, const PlannerConfig& config) {
  // Cached plans assume the full candidate set and the default cost
  // model: a restricted enumeration must not read or shadow the full
  // decision, and a custom cost model may only cache into a cache its
  // owner supplied (where every entry shares that model).
  const bool flags_full = config.enable_winograd && config.enable_direct &&
                          config.enable_fp32_fallback && config.enable_fused;
  const bool cacheable =
      config.use_cache && flags_full &&
      (!config.cost.valid() || config.cache != nullptr);
  PlanCache* cache = nullptr;
  if (cacheable)
    cache = config.cache != nullptr ? config.cache : &PlanCache::global();

  if (cache != nullptr) {
    ConvPlan hit;
    if (cache->lookup(key, &hit)) return hit;
  }

  const KernelCostModel model =
      config.cost.valid() ? config.cost : KernelCostModel::defaults(key.level);

  ConvPlan plan;
  plan.est_im2col_ms = est_im2col_ms(key, model);

  const auto consider = [&plan](ConvAlgo algo, WeightStorage storage,
                                double density, double ms) {
    if (ms < plan.est_ms) {
      plan.algo = algo;
      plan.storage = storage;
      plan.density = static_cast<float>(density);
      plan.est_ms = ms;
    }
  };

  if (key.precision == Precision::kInt8) {
    plan.algo = ConvAlgo::kIm2colQuant;
    plan.est_ms = est_int8_ms(key, model);
    if (config.enable_fused)
      consider(ConvAlgo::kIm2colQuantFused, WeightStorage::kDense, 1.0,
               est_int8_fused_ms(key, model));
    if (config.enable_fp32_fallback) {
      // A tiny layer can be cheaper in fp32 once quantize/dequantize
      // traffic is priced in; the engine then runs just that node in
      // fp32 (its consumers read the float activation as usual).
      consider(ConvAlgo::kIm2colGemm, WeightStorage::kDense, 1.0,
               plan.est_im2col_ms);
      if (config.enable_direct && direct_applicable(key))
        consider(ConvAlgo::kDirectGemm, WeightStorage::kDense, 1.0,
                 est_direct_ms(key, model));
    }
  } else {
    plan.algo = ConvAlgo::kIm2colGemm;
    plan.est_ms = plan.est_im2col_ms;
    if (config.enable_fused)
      // Fused stripes are a dense-panel path; under kFp16 it competes
      // as a legal dense candidate just like winograd does.
      consider(ConvAlgo::kIm2colFused, WeightStorage::kDense, 1.0,
               est_im2col_fused_ms(key, model));
    const bool direct_ok = config.enable_direct && direct_applicable(key);
    if (direct_ok)
      consider(ConvAlgo::kDirectGemm, WeightStorage::kDense, 1.0,
               est_direct_ms(key, model));
    if (config.enable_winograd && winograd_applicable(key))
      consider(ConvAlgo::kWinograd, WeightStorage::kDense, 1.0,
               est_winograd_ms(key, model));

    // Compressed-storage candidates: half panels under kFp16, sparse
    // panels when the key targets pruning, and their combination.
    // Winograd has no compressed variant — its dense estimate above
    // competes on equal terms.
    const bool sparse = key.sparsity_pct > 0;
    const double density = 1.0 - static_cast<double>(key.sparsity_pct) / 100.0;
    if (key.precision == Precision::kFp16) {
      consider(ConvAlgo::kIm2colGemm, WeightStorage::kHalf, 1.0,
               est_im2col_storage_ms(key, model, WeightStorage::kHalf, 1.0));
      if (direct_ok)
        consider(ConvAlgo::kDirectGemm, WeightStorage::kHalf, 1.0,
                 est_direct_storage_ms(key, model, WeightStorage::kHalf, 1.0));
    }
    if (sparse) {
      consider(
          ConvAlgo::kIm2colGemm, WeightStorage::kSparse, density,
          est_im2col_storage_ms(key, model, WeightStorage::kSparse, density));
      if (direct_ok)
        consider(ConvAlgo::kDirectGemm, WeightStorage::kSparse, density,
                 est_direct_storage_ms(key, model, WeightStorage::kSparse,
                                       density));
      if (key.precision == Precision::kFp16) {
        consider(ConvAlgo::kIm2colGemm, WeightStorage::kSparseHalf, density,
                 est_im2col_storage_ms(key, model, WeightStorage::kSparseHalf,
                                       density));
        if (direct_ok)
          consider(ConvAlgo::kDirectGemm, WeightStorage::kSparseHalf, density,
                   est_direct_storage_ms(key, model,
                                         WeightStorage::kSparseHalf, density));
      }
    }

    // Near-tie bias: on cache-resident shapes the materialized and
    // fused paths measure within noise of each other, but only the
    // fused kernel can carry a residual epilogue (nn/fusion.cpp) and
    // its scratch is stripe-sized rather than the full column matrix.
    // When dense materialized wins the estimate by under 10%, take the
    // stripes; real wins (compressed storage, direct, winograd) stand.
    if (config.enable_fused && plan.algo == ConvAlgo::kIm2colGemm &&
        plan.storage == WeightStorage::kDense) {
      const double fused_ms = est_im2col_fused_ms(key, model);
      if (fused_ms <= plan.est_ms * 1.10) {
        plan.algo = ConvAlgo::kIm2colFused;
        plan.est_ms = fused_ms;
      }
    }
  }

  if (cache != nullptr) cache->insert(key, plan);
  return plan;
}

}  // namespace ocb::nn
