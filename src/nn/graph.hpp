// Model DAG builder with shape inference.
//
// Model-zoo builders (src/models) append nodes through the typed helper
// methods; nodes reference earlier nodes only, so the vector order is
// already a topological order.
#pragma once

#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace ocb::nn {

class Graph {
 public:
  /// Declare the (single) input feature map. Must be the first call.
  int input(int c, int h, int w);

  int conv(int src, int out_c, int kernel, int stride, int pad, Act act,
           const std::string& name = "");
  int dwconv(int src, int kernel, int stride, int pad, Act act,
             const std::string& name = "");
  /// 2× transposed conv (kernel 4, stride 2, pad 1 semantics).
  int deconv(int src, int out_c, Act act, const std::string& name = "");
  int maxpool(int src, int kernel, int stride, int pad,
              const std::string& name = "");
  int upsample2x(int src, const std::string& name = "");
  int concat(const std::vector<int>& srcs, const std::string& name = "");
  int add(int a, int b, const std::string& name = "",
          Act act = Act::kNone);
  int slice(int src, int begin_c, int end_c, const std::string& name = "");
  int global_avg_pool(int src, const std::string& name = "");
  int linear(int src, int out_features, Act act,
             const std::string& name = "");

  /// Mark a node as a graph output (detect heads, depth map, ...).
  void mark_output(int node);

  int node_count() const noexcept { return static_cast<int>(nodes_.size()); }
  const Node& node(int i) const;
  const std::vector<Node>& nodes() const noexcept { return nodes_; }
  const std::vector<int>& outputs() const noexcept { return outputs_; }
  const FeatShape& shape(int i) const;
  FeatShape input_shape() const;

  /// Total learnable parameters.
  std::size_t param_count() const noexcept;
  /// FP32 model size in MiB (the paper's Table 2 "Model Size" column).
  double size_mb() const noexcept;
  /// Multiply–accumulate-based FLOP count for one forward pass.
  double flops() const noexcept;

  /// Parameters owned by node i (0 for parameter-free ops).
  std::size_t node_params(int i) const;
  /// FLOPs executed by node i.
  double node_flops(int i) const;

 private:
  int append(Node node);
  FeatShape infer_shape(const Node& node) const;

  std::vector<Node> nodes_;
  std::vector<FeatShape> shapes_;
  std::vector<int> outputs_;
};

}  // namespace ocb::nn
