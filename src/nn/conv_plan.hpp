// Per-layer convolution plans and the shape-keyed plan cache.
//
// A ConvPlan records which implementation a conv layer should run
// through (im2col→packed GEMM, direct 1×1 GEMM, Winograd F(2×2,3×3),
// or the quantized im2col path) together with the cost model's latency
// estimates. Plans are pure functions of the ConvPlanKey — the conv
// geometry, batch, precision and SIMD path — so identical layers across
// engines, models and threads share one cached decision: PlanCache is
// a bounded, thread-safe map from key to plan. Lookups never allocate
// or reshuffle (cache hits on a warmed engine stay heap-free; see
// tests/test_planner.cpp); insertions evict FIFO once the bound is
// reached. The enumeration/costing logic that *produces* plans lives
// in nn/planner.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/thread_annotations.hpp"
#include "tensor/im2col.hpp"
#include "tensor/simd.hpp"

namespace ocb::nn {

/// Numeric precision a conv/linear node executes in. kInt8 requires a
/// calibration pass first (see Engine::calibrate / PlanRequest). kFp16
/// is a *storage* precision: weights are held half-width (fp16/bf16
/// panels, see tensor/sgemm_sparse.hpp) and widened to fp32 in-register,
/// so compute and activations stay fp32 — the planner picks half
/// storage only where weight traffic, not FLOPs, bounds the layer. All
/// other ops stay FP32 in every mode.
enum class Precision { kFp32, kFp16, kInt8 };

const char* precision_name(Precision precision) noexcept;

/// How a layer's weight panels are stored for its chosen kernel.
enum class WeightStorage : std::uint8_t {
  kDense,       ///< PackedA fp32 panels (the classic path)
  kHalf,        ///< PackedHalfA 16-bit panels, widened in-register
  kSparse,      ///< PackedSparseA surviving-column panels, fp32 values
  kSparseHalf,  ///< PackedSparseA with 16-bit values
};

const char* weight_storage_name(WeightStorage storage) noexcept;

/// Candidate implementations the planner chooses between.
enum class ConvAlgo : std::uint8_t {
  kIm2colGemm,  ///< lower to a column matrix, one fused packed GEMM
  kDirectGemm,  ///< 1×1 s1 p0: the input already is the column matrix
  kWinograd,    ///< 3×3 s1: F(2×2,3×3) transforms + 16 pointwise GEMMs
  kIm2colQuant, ///< u8×s8 quantized im2col path (kInt8 precision only)
  kIm2colFused, ///< im2col-free: column stripes packed on the fly
  kIm2colQuantFused,  ///< fused stripes over the u8 quad layout (kInt8)
};

const char* conv_algo_name(ConvAlgo algo) noexcept;

/// Everything a conv plan may depend on. Two layers with equal keys run
/// identically, wherever they appear.
struct ConvPlanKey {
  int in_c = 0, in_h = 0, in_w = 0;
  int kernel = 1, stride = 1, pad = 0;
  int out_c = 0;
  int batch = 1;  ///< frames lowered side by side (max_batch of the plan)
  Precision precision = Precision::kFp32;
  simd::Level level = simd::Level::kScalar;
  /// Pruned percent the active SparsityConfig targets for this layer
  /// (see nn/prune.hpp layer_sparsity_pct); 0 = dense. Part of the key
  /// because the sparse candidates' prices scale with density.
  int sparsity_pct = 0;

  friend bool operator==(const ConvPlanKey&, const ConvPlanKey&) = default;

  ConvGeometry geometry() const noexcept {
    return ConvGeometry{in_c, in_h, in_w, kernel, kernel, stride, pad};
  }
};

struct ConvPlanKeyHash {
  std::size_t operator()(const ConvPlanKey& key) const noexcept;
};

/// The winning implementation for one key, plus the estimates that
/// picked it (retained for observability: ExecutionPlan::to_text and
/// BENCH_planner report them).
struct ConvPlan {
  ConvAlgo algo = ConvAlgo::kIm2colGemm;
  /// Weight-panel format the chosen kernel reads (dense / half-stored /
  /// sparse). Only kIm2colGemm and kDirectGemm support non-dense
  /// storage; Winograd and the quantized path stay kDense.
  WeightStorage storage = WeightStorage::kDense;
  /// Surviving weight fraction the cost model priced (1.0 for dense
  /// storage).
  float density = 1.0f;
  double est_ms = 0.0;         ///< modelled latency of the chosen algo
  double est_im2col_ms = 0.0;  ///< baseline candidate (dense im2col)
};

/// Thread-safe bounded map from ConvPlanKey to ConvPlan.
///
/// Sized for the working set of every model in a serving fleet (a
/// MiniYolo has ~10 distinct conv shapes); when full, insertion evicts
/// the oldest entry (FIFO — plans are cheap to recompute, so recency
/// tracking isn't worth making lookups mutate shared state; a lookup
/// takes the lock, probes, and copies a few dozen bytes out).
class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
    std::size_t capacity = 0;
  };

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);

  /// Copies the cached plan into `*plan` and returns true on a hit.
  /// Never allocates and never mutates the map.
  bool lookup(const ConvPlanKey& key, ConvPlan* plan);

  /// Inserts (or overwrites) a plan, evicting FIFO at capacity.
  void insert(const ConvPlanKey& key, const ConvPlan& plan);

  Stats stats() const;
  void clear();

  /// The process-wide cache engines share by default (PlannerConfig
  /// can point at a private one instead).
  static PlanCache& global();

 private:
  const std::size_t capacity_;  // immutable after construction

  mutable Mutex mutex_;
  std::unordered_map<ConvPlanKey, ConvPlan, ConvPlanKeyHash> map_
      OCB_GUARDED_BY(mutex_);
  /// Insertion-ordered ring of live keys; next_evict_ walks it FIFO.
  std::vector<ConvPlanKey> order_ OCB_GUARDED_BY(mutex_);
  std::size_t next_evict_ OCB_GUARDED_BY(mutex_) = 0;
  Stats stats_ OCB_GUARDED_BY(mutex_);
};

}  // namespace ocb::nn
