// Magnitude pruning: structured sparsity masks for conv/linear weights.
//
// Produces the binary keep-masks PackedSparseA (tensor/sgemm_sparse.hpp)
// packs around. Two structures are supported, both aligned to the
// packed-GEMM micro-kernel's 6-row panels so the pruned work is
// actually skippable:
//
//   - N:M (2:4-style): within every group of M consecutive k-columns,
//     keep the N largest-magnitude columns. With kPerTile granularity
//     the magnitude score aggregates over the panel's rows, so all six
//     rows of a packing tile share one surviving set — the sparse
//     kernel then skips exactly (M−N)/M of its inner loop. kPerRow
//     scores each row independently (finer, better accuracy at equal
//     sparsity) but the per-panel union of six different masks keeps
//     most columns, so it trades speed back for accuracy.
//
//   - Block: prune whole (row-tile × block_k) blocks, lowest L2 score
//     first, up to the layer budget. Coarser than N:M, cheapest to
//     skip.
//
// The budget caps the pruned fraction per layer, and min_params keeps
// tiny layers dense — pruning a 3×3×16 stem costs accuracy and saves
// nothing. Engine::prepare() applies the same config to every eligible
// layer and the planner prices the surviving density (nn/planner.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ocb::nn {

enum class SparsityScheme : std::uint8_t {
  kNone,   ///< pruning disabled
  kNm,     ///< N:M within consecutive k-column groups
  kBlock,  ///< whole (row-tile × block_k) blocks
};

const char* sparsity_scheme_name(SparsityScheme scheme) noexcept;

/// Whose magnitudes decide an N:M group's survivors.
enum class SparsityGranularity : std::uint8_t {
  kPerTile,  ///< score over the 6-row packing tile (kernel-skippable)
  kPerRow,   ///< score each row alone (accuracy-oriented)
};

/// Pruning policy applied uniformly to every eligible layer.
struct SparsityConfig {
  SparsityScheme scheme = SparsityScheme::kNone;
  int nm_n = 2;  ///< keep N of every M k-columns (kNm)
  int nm_m = 4;
  SparsityGranularity granularity = SparsityGranularity::kPerTile;
  int block_k = 4;  ///< k-extent of a pruning block (kBlock)
  /// Maximum prunable fraction per layer; an N:M ratio more aggressive
  /// than the budget is relaxed by keeping extra columns per group.
  float budget = 0.5f;
  /// Layers with fewer weights stay dense.
  std::size_t min_params = 4096;

  bool enabled() const noexcept { return scheme != SparsityScheme::kNone; }

  friend bool operator==(const SparsityConfig&,
                         const SparsityConfig&) = default;
};

/// Surviving fraction the config targets on an eligible layer (1.0 when
/// disabled). The planner prices sparse candidates with this before any
/// mask exists.
double modelled_density(const SparsityConfig& config) noexcept;

/// The integer pruned-percent a layer of `params` weights contributes
/// to its ConvPlanKey: 0 when pruning is disabled or the layer is under
/// the min_params floor, else round(100·(1 − modelled_density)).
int layer_sparsity_pct(const SparsityConfig& config,
                       std::size_t params) noexcept;

/// Build the keep-mask (1 = keep, 0 = prune; M×K row-major, matching
/// `w`) for one layer. Returns an all-ones mask for layers the config
/// leaves dense.
std::vector<std::uint8_t> magnitude_mask(const float* w, std::size_t m,
                                         std::size_t k,
                                         const SparsityConfig& config);

/// Zero the pruned elements of `w` in place.
void apply_mask(float* w, const std::uint8_t* mask, std::size_t count) noexcept;

/// Kept fraction of a mask (1.0 for an empty mask).
double mask_density(const std::uint8_t* mask, std::size_t count) noexcept;

}  // namespace ocb::nn
