#include "nn/prune.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/gemm.hpp"

namespace ocb::nn {

namespace {

constexpr std::size_t kRowTile = PackedA::kRowTile;

/// Columns kept per full N:M group once the budget is applied: the
/// configured N, raised if N:M would prune past the budget.
int nm_keep_count(const SparsityConfig& config) noexcept {
  const int m = std::max(1, config.nm_m);
  const int n = std::clamp(config.nm_n, 1, m);
  const double keep_frac =
      1.0 - std::clamp(static_cast<double>(config.budget), 0.0, 1.0);
  const int budget_keep =
      static_cast<int>(std::ceil(keep_frac * static_cast<double>(m) - 1e-9));
  return std::clamp(std::max(n, budget_keep), 1, m);
}

/// Keep the `keep` largest-scoring columns of score[0..count): mark
/// their mask slots. Ties resolve to the lower index (deterministic
/// across machines).
void keep_top(const double* score, std::size_t count, std::size_t keep,
              std::uint8_t* group_keep) {
  std::fill(group_keep, group_keep + count, std::uint8_t{0});
  keep = std::min(keep, count);
  for (std::size_t pick = 0; pick < keep; ++pick) {
    std::size_t best = count;
    for (std::size_t j = 0; j < count; ++j) {
      if (group_keep[j] != 0) continue;
      if (best == count || score[j] > score[best]) best = j;
    }
    group_keep[best] = 1;
  }
}

void nm_mask_rows(const float* w, std::size_t k, std::size_t row0,
                  std::size_t rows, const SparsityConfig& config,
                  std::uint8_t* mask) {
  const std::size_t group = static_cast<std::size_t>(std::max(1, config.nm_m));
  const std::size_t keep = static_cast<std::size_t>(nm_keep_count(config));
  std::vector<double> score(group);
  std::vector<std::uint8_t> group_keep(group);
  for (std::size_t g0 = 0; g0 < k; g0 += group) {
    const std::size_t gs = std::min(group, k - g0);
    for (std::size_t j = 0; j < gs; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows; ++r) {
        const double v = w[(row0 + r) * k + g0 + j];
        s += v * v;
      }
      score[j] = s;
    }
    keep_top(score.data(), gs, keep, group_keep.data());
    for (std::size_t j = 0; j < gs; ++j)
      for (std::size_t r = 0; r < rows; ++r)
        mask[(row0 + r) * k + g0 + j] = group_keep[j];
  }
}

void block_mask(const float* w, std::size_t m, std::size_t k,
                const SparsityConfig& config, std::uint8_t* mask) {
  const std::size_t bk = static_cast<std::size_t>(std::max(1, config.block_k));
  const std::size_t tiles = (m + kRowTile - 1) / kRowTile;
  const std::size_t kblocks = (k + bk - 1) / bk;
  const std::size_t count = tiles * kblocks;

  struct Scored {
    double score;
    std::uint32_t id;
  };
  std::vector<Scored> blocks(count);
  for (std::size_t t = 0; t < tiles; ++t) {
    const std::size_t r0 = t * kRowTile;
    const std::size_t rows = std::min(kRowTile, m - r0);
    for (std::size_t b = 0; b < kblocks; ++b) {
      const std::size_t k0 = b * bk;
      const std::size_t ks = std::min(bk, k - k0);
      double s = 0.0;
      for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t j = 0; j < ks; ++j) {
          const double v = w[(r0 + r) * k + k0 + j];
          s += v * v;
        }
      blocks[t * kblocks + b] = {s, static_cast<std::uint32_t>(t * kblocks + b)};
    }
  }

  const double budget =
      std::clamp(static_cast<double>(config.budget), 0.0, 1.0);
  const std::size_t prune =
      static_cast<std::size_t>(budget * static_cast<double>(count));
  // Lowest L2 first; ties by id for a machine-independent order.
  std::partial_sort(blocks.begin(), blocks.begin() + prune, blocks.end(),
                    [](const Scored& a, const Scored& b) {
                      return a.score != b.score ? a.score < b.score
                                                : a.id < b.id;
                    });
  for (std::size_t i = 0; i < prune; ++i) {
    const std::size_t t = blocks[i].id / kblocks;
    const std::size_t b = blocks[i].id % kblocks;
    const std::size_t r0 = t * kRowTile;
    const std::size_t rows = std::min(kRowTile, m - r0);
    const std::size_t k0 = b * bk;
    const std::size_t ks = std::min(bk, k - k0);
    for (std::size_t r = 0; r < rows; ++r)
      for (std::size_t j = 0; j < ks; ++j) mask[(r0 + r) * k + k0 + j] = 0;
  }
}

}  // namespace

const char* sparsity_scheme_name(SparsityScheme scheme) noexcept {
  switch (scheme) {
    case SparsityScheme::kNone: return "none";
    case SparsityScheme::kNm: return "nm";
    case SparsityScheme::kBlock: return "block";
  }
  return "?";
}

double modelled_density(const SparsityConfig& config) noexcept {
  if (!config.enabled()) return 1.0;
  if (config.scheme == SparsityScheme::kNm) {
    return static_cast<double>(nm_keep_count(config)) /
           static_cast<double>(std::max(1, config.nm_m));
  }
  return 1.0 - std::clamp(static_cast<double>(config.budget), 0.0, 1.0);
}

int layer_sparsity_pct(const SparsityConfig& config,
                       std::size_t params) noexcept {
  if (!config.enabled() || params < config.min_params) return 0;
  const int pct =
      static_cast<int>(std::lround((1.0 - modelled_density(config)) * 100.0));
  return std::clamp(pct, 0, 99);
}

std::vector<std::uint8_t> magnitude_mask(const float* w, std::size_t m,
                                         std::size_t k,
                                         const SparsityConfig& config) {
  std::vector<std::uint8_t> mask(m * k, std::uint8_t{1});
  if (layer_sparsity_pct(config, m * k) == 0) return mask;

  if (config.scheme == SparsityScheme::kNm) {
    if (config.granularity == SparsityGranularity::kPerRow) {
      for (std::size_t i = 0; i < m; ++i)
        nm_mask_rows(w, k, i, 1, config, mask.data());
    } else {
      for (std::size_t r0 = 0; r0 < m; r0 += kRowTile)
        nm_mask_rows(w, k, r0, std::min(kRowTile, m - r0), config,
                     mask.data());
    }
  } else {
    block_mask(w, m, k, config, mask.data());
  }
  return mask;
}

void apply_mask(float* w, const std::uint8_t* mask,
                std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i)
    if (mask[i] == 0) w[i] = 0.0f;
}

double mask_density(const std::uint8_t* mask, std::size_t count) noexcept {
  if (count == 0) return 1.0;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < count; ++i) kept += mask[i] != 0 ? 1 : 0;
  return static_cast<double>(kept) / static_cast<double>(count);
}

}  // namespace ocb::nn
