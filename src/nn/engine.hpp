// Inference engine: materialises a Graph's weights and executes it.
//
// Weights are deterministic functions of (graph structure, seed); this
// reproduction benchmarks compute behaviour, which is independent of the
// trained values, so He-initialised weights stand in for checkpoints.
// (Accuracy experiments use the separately *trained* MiniYolo models —
// see src/trainer.)
//
// Steady-state frame path: every conv/linear weight matrix is repacked
// once at load time into PackedA tile panels (re-done lazily if a test
// or trainer mutates weight()), activations are pre-allocated from the
// graph's shape plan, concat argument lists are precomputed, and the
// im2col scratch comes from an arena reserved for the largest lowering
// in the graph — so run() performs no heap allocation for compute
// buffers after construction (see scratch_arena() for the test hook).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/graph.hpp"
#include "nn/ops.hpp"
#include "nn/quantize.hpp"

namespace ocb::nn {

/// Numeric precision the engine executes conv/linear nodes in. kInt8
/// requires a calibration pass first (see calibrate/set_precision);
/// all other ops stay FP32 in either mode.
enum class Precision { kFp32, kInt8 };

class Engine {
 public:
  /// Allocates and initialises all parameters (He-normal, per-node
  /// deterministic seeds derived from `seed`), packs weight panels and
  /// reserves the scratch arena from the graph's im2col plan.
  Engine(const Graph& graph, std::uint64_t seed = 1);

  const Graph& graph() const noexcept { return graph_; }

  /// Run a forward pass; `input` must match the graph's input shape
  /// (batch 1). Returns the outputs marked by Graph::mark_output, in
  /// order. The returned tensors live in pre-sized engine storage —
  /// no allocation happens on this path after construction — and stay
  /// valid until the next run()/run_batch()/plan_batch(); copy them
  /// (e.g. `auto outs = engine.run(x);`) to keep a snapshot.
  const std::vector<Tensor>& run(const Tensor& input);

  /// Extend the activation and scratch plan to micro-batches of up to
  /// `max_batch` frames: activations grow to {max_batch, c, h, w}
  /// (concat argument lists are rebuilt against the new pointers) and
  /// the arena gains one block sized for the widest batched conv
  /// lowering, so run_batch() stays heap-free. Shrinking requests are
  /// no-ops; batch-1 run() keeps working (it executes the front image).
  void plan_batch(int max_batch);
  int max_batch() const noexcept { return max_batch_; }

  /// Run up to max_batch() frames as one fused forward pass: every
  /// conv lowers all frames side by side into a single widened GEMM
  /// (see conv2d_batched) so per-layer dispatch overhead is paid once
  /// per batch, not once per frame. Returns outputs[frame][output],
  /// each a batch-1 tensor matching what run(frame) would produce.
  /// INT8 engines and single-frame batches fall back to per-frame
  /// run() (the quantized path keeps its per-image buffers). Like
  /// run(), the view aliases pre-sized engine storage (heap-free per
  /// call) and is invalidated by the next run()/run_batch()/
  /// plan_batch().
  std::span<const std::vector<Tensor>> run_batch(
      const std::vector<Tensor>& inputs);

  /// Output tensor of a specific node from the most recent run().
  const Tensor& node_output(int node) const;

  /// Direct access to a conv/linear node's weights (tests & trainer).
  /// Mutating the returned tensor marks the node's packed panels dirty;
  /// they are repacked on the next run().
  Tensor& weight(int node);
  Tensor& bias(int node);

  /// The im2col scratch arena. Tests assert the frame path stays
  /// allocation-free: stats().grows must remain 0 across run() calls.
  const Arena& scratch_arena() const noexcept { return scratch_.arena; }

  /// Run `frames` through the FP32 path, recording per-node output
  /// min/max. The result is also retained internally, so a following
  /// set_precision(kInt8) needs no explicit calibration argument.
  /// Requires the current precision to be kFp32.
  QuantCalibration calibrate(const std::vector<Tensor>& frames);

  /// Switch execution precision. kInt8 quantizes every conv/linear
  /// weight matrix per output channel against `calib` (or the ranges
  /// recorded by the last calibrate() when null), packs int8 panels and
  /// extends the scratch arena reservation — run() stays heap-free in
  /// either mode. Conv nodes whose consumers are all conv/linear keep
  /// their output in u8 (the float activation is dequantized lazily by
  /// node_output()).
  void set_precision(Precision precision,
                     const QuantCalibration* calib = nullptr);
  Precision precision() const noexcept { return precision_; }

 private:
  void repack(int node);
  void build_int8_plan();
  void rebuild_concat_lists();
  /// (Re)allocates the output snapshot slots: outputs_ plus one
  /// batch_outputs_ row per planned batch image. The only place output
  /// storage is allocated — the run paths just copy into it.
  void resize_output_slots();
  /// Copies image `image` of every graph output into `dst`'s pre-sized
  /// batch-1 tensors.
  void materialize_outputs(int image, std::vector<Tensor>& dst) const;

  Graph graph_;  // engine owns an immutable copy of the structure
  std::vector<Tensor> weights_;
  std::vector<Tensor> biases_;
  /// Mutable: node_output() lazily dequantizes u8-resident activations.
  mutable std::vector<Tensor> activations_;
  std::vector<PackedA> packed_;      ///< per-node weight panels (conv/linear)
  std::vector<char> pack_dirty_;     ///< weight() handed out since last pack
  std::vector<std::vector<const float*>> concat_srcs_;
  std::vector<std::vector<int>> concat_channels_;
  /// Per-image concat argument scratch for run_batch (capacity = widest
  /// concat in the graph, reserved once — resize below capacity is
  /// allocation-free).
  std::vector<const float*> concat_batch_srcs_;
  /// Pre-sized output snapshots returned by run() / run_batch().
  std::vector<Tensor> outputs_;
  std::vector<std::vector<Tensor>> batch_outputs_;
  ConvScratch scratch_;
  bool has_run_ = false;  ///< activations hold real data (vs zero-fill)
  int max_batch_ = 1;     ///< activation batch capacity (see plan_batch)
  std::size_t batch_scratch_bytes_ = 0;  ///< arena block already reserved

  Precision precision_ = Precision::kFp32;
  QuantCalibration calib_;                ///< last recorded calibration
  std::vector<QuantizedLayer> qlayers_;   ///< per-node INT8 state
  std::vector<TensorQuant> node_quant_;   ///< per-node activation quant
  std::vector<std::vector<std::uint8_t>> u8_acts_;  ///< persistent u8 bufs
  std::vector<char> u8_valid_;            ///< u8 buffer current this frame
  mutable std::vector<char> float_stale_; ///< float view needs dequant
  std::size_t int8_scratch_bytes_ = 0;    ///< extra arena already reserved
};

}  // namespace ocb::nn
