// Inference engine: materialises a Graph's weights and executes it.
//
// Weights are deterministic functions of (graph structure, seed); this
// reproduction benchmarks compute behaviour, which is independent of the
// trained values, so He-initialised weights stand in for checkpoints.
// (Accuracy experiments use the separately *trained* MiniYolo models —
// see src/trainer.)
//
// Planning is explicit: prepare(PlanRequest) is the single entry point
// that decides, per conv layer, which implementation to run (im2col →
// packed GEMM, direct 1×1, Winograd F(2×2,3×3), or the quantized
// path), sizes activations for the requested micro-batch, selects the
// execution precision, and reserves the scratch arena — consulting the
// process-wide PlanCache so identical layers across engines share one
// costed decision (see nn/planner.hpp). run()/run_batch() then just
// dispatch along the prepared ExecutionPlan.
//
// Steady-state frame path: every conv/linear weight matrix is repacked
// once at load time into PackedA tile panels (re-done lazily if a test
// or trainer mutates weight()), activations are pre-allocated from the
// graph's shape plan, concat argument lists are precomputed, and conv
// scratch comes from an arena reserved at prepare time — so run() and
// a re-prepare() that changes nothing perform no heap allocation after
// warm-up (see scratch_arena() for the test hook).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "nn/fusion.hpp"
#include "nn/graph.hpp"
#include "nn/ops.hpp"
#include "nn/planner.hpp"
#include "nn/prune.hpp"
#include "nn/quantize.hpp"

namespace ocb::nn {

/// Weight-integrity checking (DESIGN.md §14). The engine records a
/// CRC32 per packed weight panel (dense, sparse and half formats) at
/// pack time; verification compares the live panels against the
/// recorded values and, on mismatch, re-packs the node from the master
/// fp32 weights_ tensor — which silent in-memory corruption cannot
/// reach through the packed-panel accessors.
struct IntegrityConfig {
  /// Verify one node (round-robin) every N frames; 0 disables. The
  /// cadence amortises the sweep so a frame pays one panel's CRC, not
  /// the whole model's.
  int verify_every = 0;
  /// Re-pack a failing node from the master weights (true) or only
  /// count the mismatch (false — detection-only telemetry).
  bool recover = true;
};

/// Counters accumulated by the verification path since construction.
struct IntegrityReport {
  std::uint64_t nodes_checked = 0;
  std::uint64_t mismatches = 0;
  std::uint64_t repacks = 0;
};

/// Everything a planning pass depends on. Defaults reproduce a plain
/// fp32 batch-1 engine with the full candidate set enabled.
struct PlanRequest {
  int max_batch = 1;             ///< frames run_batch may fuse
  Precision precision = Precision::kFp32;
  /// Optional calibration for kInt8 (when null, the ranges recorded by
  /// the last calibrate() are used).
  const QuantCalibration* calibration = nullptr;
  PlannerConfig planner{};       ///< candidate toggles, cost model, cache
  /// Structured magnitude pruning (see nn/prune.hpp). When enabled, the
  /// per-layer sparsity percent joins each conv/linear plan key and the
  /// planner may pick sparse packed kernels; under kInt8 the masks zero
  /// weights before quantization (accuracy effect only — the quantized
  /// kernels stay dense).
  SparsityConfig sparsity{};
  /// 16-bit encoding used when the planner picks half storage (kFp16
  /// precision).
  HalfFormat half_format = HalfFormat::kFp16;
  /// Graph fusion + activation memory planning (see nn/fusion.hpp).
  /// All-off by default. Ignored under kInt8 (the quantized path keeps
  /// per-node u8 buffers). calibrate() requires an unfused plan.
  FusionConfig fusion{};
  /// Checksum-verification cadence for the packed weight panels.
  /// Config-only: changing it never invalidates the plan or allocates.
  IntegrityConfig integrity{};
};

/// The engine's active plan, returned by prepare() for observability.
/// Valid until the next prepare() on the same engine.
struct ExecutionPlan {
  Precision precision = Precision::kFp32;
  int max_batch = 1;
  /// Per graph-node plans; non-conv nodes keep the default entry.
  std::vector<ConvPlan> nodes;
  int conv_nodes = 0;
  int winograd_nodes = 0;
  int direct_nodes = 0;
  int im2col_nodes = 0;
  int quant_nodes = 0;
  /// Conv/linear nodes running sparse packed kernels (kSparse or
  /// kSparseHalf storage) and half-stored panels (kHalf or kSparseHalf)
  /// — a node with kSparseHalf counts in both.
  int sparse_nodes = 0;
  int fp16_nodes = 0;
  /// Conv nodes running the im2col-free stripe paths (kIm2colFused or
  /// kIm2colQuantFused).
  int fused_nodes = 0;
  /// Graph-fusion results (see nn/fusion.hpp): Add nodes folded into
  /// conv epilogues and concat input copies eliminated by placement.
  int residual_fused = 0;
  int concat_elided = 0;
  /// Activation memory: the one-buffer-per-node baseline vs the
  /// liveness-planned arena. Equal unless FusionConfig::plan_memory.
  std::size_t arena_peak_bytes_before = 0;
  std::size_t arena_peak_bytes_after = 0;
  /// PlanCache traffic attributable to the last prepare() (approximate
  /// when other threads plan concurrently against the same cache).
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// Human-readable per-layer table (layer, geometry, chosen algo,
  /// modelled speedup vs im2col) for logs and benches.
  std::string to_text(const Graph& graph) const;
};

class Engine {
 public:
  /// Allocates and initialises all parameters (He-normal, per-node
  /// deterministic seeds derived from `seed`), packs weight panels and
  /// builds the baseline plan (fp32, batch 1, im2col everywhere — the
  /// planner engages through prepare()).
  Engine(const Graph& graph, std::uint64_t seed = 1);

  const Graph& graph() const noexcept { return graph_; }

  /// Plan execution for `request`: pick each conv's implementation via
  /// the shape-keyed PlanCache, (re)size activations for max_batch
  /// (grow-only), transform Winograd weight panels, reserve arena
  /// scratch and select the precision. Re-preparing with a request
  /// that changes nothing is heap-free (plans land in pre-sized
  /// storage; cache lookups never allocate). The returned reference
  /// stays valid for the engine's lifetime and always describes the
  /// active plan.
  const ExecutionPlan& prepare(const PlanRequest& request);

  /// The active plan (as built by the last prepare(), or the
  /// constructor's baseline).
  const ExecutionPlan& plan() const noexcept { return plan_; }

  /// Run a forward pass; `input` must match the graph's input shape
  /// (batch 1). Returns the outputs marked by Graph::mark_output, in
  /// order. The returned tensors live in pre-sized engine storage —
  /// no allocation happens on this path after construction — and stay
  /// valid until the next run()/run_batch()/prepare(); copy them
  /// (e.g. `auto outs = engine.run(x);`) to keep a snapshot.
  const std::vector<Tensor>& run(const Tensor& input);

  int max_batch() const noexcept { return max_batch_; }

  /// Run up to max_batch() frames as one fused forward pass: every
  /// conv processes all frames side by side (widened im2col GEMM or
  /// batched Winograd tiles, per the active plan) so per-layer
  /// dispatch overhead is paid once per batch, not once per frame.
  /// Returns outputs[frame][output], each a batch-1 tensor matching
  /// what run(frame) would produce. INT8 engines and single-frame
  /// batches fall back to per-frame run() (the quantized path keeps
  /// its per-image buffers). Like run(), the view aliases pre-sized
  /// engine storage (heap-free per call) and is invalidated by the
  /// next run()/run_batch()/prepare().
  std::span<const std::vector<Tensor>> run_batch(
      const std::vector<Tensor>& inputs);

  /// Output tensor of a specific node from the most recent run().
  /// Nodes the active fusion plan placed into another buffer are
  /// copied back on demand; under FusionConfig::plan_memory only
  /// graph outputs and nodes still live at the end of the pass hold
  /// meaningful data (dead buffers may have been reused).
  const Tensor& node_output(int node) const;

  /// The active fusion/memory plan (default when fusion is off).
  const MemoryPlan& fusion_plan() const noexcept { return fusion_; }

  /// Direct access to a conv/linear node's weights (tests & trainer).
  /// Mutating the returned tensor marks the node's packed panels dirty;
  /// they are repacked (and re-transformed, for Winograd-planned
  /// nodes) on the next run().
  Tensor& weight(int node);
  Tensor& bias(int node);

  /// The conv scratch arena. Tests assert the frame path stays
  /// allocation-free: stats().grows must remain 0 across run() calls.
  const Arena& scratch_arena() const noexcept { return scratch_.arena; }

  /// Run `frames` through the FP32 path, recording per-node output
  /// min/max. The result is also retained internally, so a following
  /// prepare() for kInt8 needs no explicit calibration argument.
  /// Requires the active precision to be kFp32 and an unfused plan
  /// (every node's float output must be observable).
  QuantCalibration calibrate(const std::vector<Tensor>& frames);

  /// The active plan's precision (folded into PlanRequest; this is a
  /// read-only view of plan().precision).
  Precision precision() const noexcept { return precision_; }

  /// Verify every packed weight panel against its recorded CRC32 now
  /// (a full sweep, independent of the configured cadence). Returns
  /// the number of nodes whose live panels mismatched; with `recover`
  /// each failing node is re-packed from the master weights before
  /// returning. The clean (no-mismatch) sweep is heap-free.
  int verify_weights(bool recover = true);

  /// Counters accumulated by cadence ticks and explicit sweeps.
  const IntegrityReport& integrity_report() const noexcept {
    return integrity_report_;
  }

  /// Direct access to a node's packed fp32 panels for fault injection:
  /// writes through PackedA::mutable_data() bypass pack_dirty_
  /// tracking, modelling silent memory corruption the checksum layer
  /// must catch. Node must be conv/linear (non-empty panels).
  PackedA& packed_panels(int node);

  /// The CRC32 recorded for a node's dense panels at pack time.
  std::uint32_t recorded_checksum(int node) const;

  // --- Plan-verifier introspection (src/verify, DESIGN.md §15) -------
  // Read-only views of the state the static plan verifier audits. The
  // verifier re-derives soundness independently; these accessors only
  // expose *what the engine did*, never whether it was legal.

  /// Which packed weight formats a node carries and the CRC32 recorded
  /// for each at pack time (0 = format not packed).
  struct PanelState {
    bool dense = false;
    bool sparse = false;
    bool sparse_half = false;  ///< sparse panels store 16-bit values
    bool half = false;
    bool winograd = false;  ///< transformed 3×3 panels present
    std::uint32_t dense_crc = 0;
    std::uint32_t sparse_crc = 0;
    std::uint32_t half_crc = 0;
  };
  PanelState panel_state(int node) const;

  /// A node's INT8 execution state under the active plan.
  struct QuantState {
    bool quantized = false;  ///< node runs the u8×s8 kernels
    bool emit_u8 = false;    ///< output stays u8-resident mid-graph
  };
  QuantState quant_state(int node) const;

  /// The applied activation layout for one node: image b of the node
  /// lives at base + b·stride_floats, inside [backing, backing +
  /// backing_floats) — the arena when the plan placed memory, the
  /// node's root tensor otherwise.
  struct ActLayoutView {
    const float* base = nullptr;
    std::size_t stride_floats = 0;
    const float* backing = nullptr;
    std::size_t backing_floats = 0;
  };
  ActLayoutView act_layout(int node) const;

  /// Debug-build plan-verification gate. When the build compiles the
  /// gate in (OCB_PLAN_VERIFY, default outside Release) and a hook is
  /// installed, every prepare() that rebuilt the plan invokes it with
  /// the fully assembled engine state before returning; the hook is
  /// expected to OCB_CHECK-fail on an unsound plan (see
  /// ocb::verify::install_prepare_gate). Process-wide and atomic; the
  /// setter exists in every build so callers need no #if of their own.
  using PlanVerifyHook = void (*)(const Engine& engine);
  static void set_plan_verify_hook(PlanVerifyHook hook) noexcept;
  static PlanVerifyHook plan_verify_hook() noexcept;

 private:
  void repack(int node);
  /// Re-record the CRC32s of node i's packed panels (all live formats).
  void record_checksums(std::size_t i);
  /// Verify one node's panels; re-pack from master weights on mismatch
  /// when `recover`. Returns true when all live panels matched.
  bool verify_node(int node, bool recover);
  /// Cadence hook called once per frame by the run paths: after every
  /// integrity_.verify_every frames, verify the next node round-robin.
  void maybe_verify_tick();
  /// Build the compressed weight panels (sparse and/or half) the active
  /// plan wants for `node`, if any are missing or stale.
  void pack_storage(int node);
  /// Transform + pack node's 3×3 weights into 16 Winograd panels.
  void pack_winograd(int node);
  void build_int8_plan();
  /// Grow activations/outputs/arena for micro-batches of `max_batch`
  /// (grow-only).
  void grow_batch_plan(int max_batch);
  /// Recompute per-node activation base pointers and per-image strides
  /// from the active fusion plan (identity mapping when fusion is
  /// off). Must run after anything that moves activation storage.
  void rebuild_act_layout();
  /// (Re)allocates the output snapshot slots: outputs_ plus one
  /// batch_outputs_ row per planned batch image. The only place output
  /// storage is allocated — the run paths just copy into it.
  void resize_output_slots();
  /// Copies image `image` of every graph output into `dst`'s pre-sized
  /// batch-1 tensors.
  void materialize_outputs(int image, std::vector<Tensor>& dst) const;

  Graph graph_;  // engine owns an immutable copy of the structure
  std::vector<Tensor> weights_;
  std::vector<Tensor> biases_;
  /// Mutable: node_output() lazily dequantizes u8-resident activations.
  mutable std::vector<Tensor> activations_;
  std::vector<PackedA> packed_;      ///< per-node weight panels (conv/linear)
  std::vector<char> pack_dirty_;     ///< weight() handed out since last pack
  /// Compressed weight panels, built lazily when the plan assigns the
  /// node kSparse/kSparseHalf or kHalf storage (empty otherwise).
  std::vector<PackedSparseA> sparse_packed_;
  std::vector<PackedHalfA> half_packed_;
  /// Per-node Winograd weight panels (16 each), packed lazily when the
  /// plan first selects kWinograd for the node.
  std::vector<std::vector<PackedA>> wino_panels_;
  /// Pre-sized output snapshots returned by run() / run_batch().
  std::vector<Tensor> outputs_;
  std::vector<std::vector<Tensor>> batch_outputs_;
  ConvScratch scratch_;
  bool has_run_ = false;  ///< activations hold real data (vs zero-fill)
  int max_batch_ = 1;     ///< activation batch capacity (see prepare)
  std::size_t batch_scratch_bytes_ = 0;  ///< arena block already reserved
  std::size_t wino_scratch_bytes_ = 0;   ///< ditto, winograd V+M buffers
  std::size_t fused_scratch_bytes_ = 0;  ///< ditto, fused stripe panels

  /// Active fusion/memory plan and the per-node activation views it
  /// induces: node i's image b lives at act_base_[i] + b*act_stride_[i]
  /// (into its own tensor, another node's buffer, or act_arena_).
  MemoryPlan fusion_;
  FusionConfig fusion_cfg_{};
  std::vector<float*> act_base_;
  std::vector<std::size_t> act_stride_;
  std::vector<float> act_arena_;  ///< planned-offset storage (plan_memory)

  ExecutionPlan plan_;               ///< active plan (see prepare)
  std::vector<ConvPlan> plan_scratch_;  ///< pre-sized planning staging

  /// Checksum state: recorded CRCs per node and format (0 = no panel),
  /// the conv/linear node list the cadence walks, and its cursor.
  IntegrityConfig integrity_{};
  IntegrityReport integrity_report_{};
  std::vector<std::uint32_t> pack_crc_;
  std::vector<std::uint32_t> sparse_crc_;
  std::vector<std::uint32_t> half_crc_;
  std::vector<int> integrity_nodes_;
  std::size_t integrity_cursor_ = 0;
  int integrity_tick_ = 0;

  Precision precision_ = Precision::kFp32;
  SparsityConfig sparsity_{};             ///< active pruning config
  HalfFormat half_format_ = HalfFormat::kFp16;
  /// Masked weight staging for int8 quantization under pruning.
  std::vector<float> masked_scratch_;
  QuantCalibration calib_;                ///< last recorded calibration
  std::vector<QuantizedLayer> qlayers_;   ///< per-node INT8 state
  std::vector<TensorQuant> node_quant_;   ///< per-node activation quant
  std::vector<std::vector<std::uint8_t>> u8_acts_;  ///< persistent u8 bufs
  std::vector<char> u8_valid_;            ///< u8 buffer current this frame
  mutable std::vector<char> float_stale_; ///< float view needs dequant
  std::size_t int8_scratch_bytes_ = 0;    ///< extra arena already reserved
};

}  // namespace ocb::nn
