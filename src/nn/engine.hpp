// Inference engine: materialises a Graph's weights and executes it.
//
// Weights are deterministic functions of (graph structure, seed); this
// reproduction benchmarks compute behaviour, which is independent of the
// trained values, so He-initialised weights stand in for checkpoints.
// (Accuracy experiments use the separately *trained* MiniYolo models —
// see src/trainer.)
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.hpp"
#include "nn/ops.hpp"

namespace ocb::nn {

class Engine {
 public:
  /// Allocates and initialises all parameters (He-normal, per-node
  /// deterministic seeds derived from `seed`).
  Engine(const Graph& graph, std::uint64_t seed = 1);

  const Graph& graph() const noexcept { return graph_; }

  /// Run a forward pass; `input` must match the graph's input shape
  /// (batch 1). Returns the outputs marked by Graph::mark_output, in
  /// order.
  std::vector<Tensor> run(const Tensor& input);

  /// Output tensor of a specific node from the most recent run().
  const Tensor& node_output(int node) const;

  /// Direct access to a conv/linear node's weights (tests & trainer).
  Tensor& weight(int node);
  Tensor& bias(int node);

 private:
  Graph graph_;  // engine owns an immutable copy of the structure
  std::vector<Tensor> weights_;
  std::vector<Tensor> biases_;
  std::vector<Tensor> activations_;
  ConvScratch scratch_;
};

}  // namespace ocb::nn
