#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/error.hpp"

namespace ocb::nn {

void TensorRange::observe(const float* data, std::size_t n) noexcept {
  float lo = mn, hi = mx;
  for (std::size_t i = 0; i < n; ++i) {
    lo = std::min(lo, data[i]);
    hi = std::max(hi, data[i]);
  }
  mn = lo;
  mx = hi;
}

TensorQuant quant_from_range(float mn, float mx) noexcept {
  // Widen to include 0 so the zero-point is representable; exact-zero
  // codes matter for spatial padding and post-ReLU activations.
  mn = std::min(mn, 0.0f);
  mx = std::max(mx, 0.0f);
  constexpr float kTinyRange = 1e-8f;
  TensorQuant q;
  if (!(mx - mn > kTinyRange)) return q;  // degenerate/unseen: identity
  q.scale = (mx - mn) / 127.0f;
  const long zp = std::lrintf(-mn / q.scale);
  q.zero_point = static_cast<std::int32_t>(std::clamp(zp, 0l, 127l));
  return q;
}

void quantize_to_u8(const float* src, std::size_t n, const TensorQuant& q,
                    std::uint8_t* dst) noexcept {
  const float inv = 1.0f / q.scale;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t v =
        static_cast<std::int32_t>(std::lrintf(src[i] * inv)) + q.zero_point;
    dst[i] = static_cast<std::uint8_t>(std::clamp(v, 0, 127));
  }
}

void dequantize_u8(const std::uint8_t* src, std::size_t n,
                   const TensorQuant& q, float* dst) noexcept {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = static_cast<float>(static_cast<std::int32_t>(src[i]) -
                                q.zero_point) *
             q.scale;
}

QuantizedLayer quantize_layer(const float* weight, std::size_t m,
                              std::size_t k, const TensorQuant& in_q,
                              const TensorQuant& out_q, EpiAct act) {
  QuantizedLayer layer;
  layer.in_q = in_q;
  layer.out_q = out_q;
  layer.act = act;
  layer.row_scale.resize(m);
  layer.row_offset.resize(m);

  std::vector<std::int8_t> wq(m * k);
  for (std::size_t r = 0; r < m; ++r) {
    const float* row = weight + r * k;
    float amax = 0.0f;
    for (std::size_t j = 0; j < k; ++j)
      amax = std::max(amax, std::fabs(row[j]));
    // Symmetric per-channel scale; −128 is never produced so the
    // representable range is exactly ±127·scale_w.
    const float sw = amax > 0.0f ? amax / 127.0f : 1.0f;
    const float inv = 1.0f / sw;
    std::int32_t wsum = 0;
    for (std::size_t j = 0; j < k; ++j) {
      const long q = std::lrintf(row[j] * inv);
      const std::int8_t qb =
          static_cast<std::int8_t>(std::clamp(q, -127l, 127l));
      wq[r * k + j] = qb;
      wsum += qb;
    }
    layer.row_scale[r] = in_q.scale * sw;
    layer.row_offset[r] = in_q.zero_point * wsum;
  }
  layer.packed.pack(wq.data(), m, k);
  return layer;
}

void qconv2d(const std::uint8_t* input_q, const ConvGeometry& geom,
             const QuantizedLayer& layer, const float* bias, float* out_f32,
             std::uint8_t* out_u8, ConvScratch& scratch, bool fused) {
  OCB_CHECK(layer.valid());
  scratch.arena.reset();
  const QGemmEpilogue epi = layer.epilogue(bias);
  if (fused) {
    auto* panels = static_cast<std::uint8_t*>(
        scratch.arena.alloc(fused_qconv_scratch_bytes(geom)));
    const Im2colQuadPanelPacker packer(
        input_q, geom, static_cast<std::uint8_t>(layer.in_q.zero_point));
    if (out_f32 != nullptr) {
      qgemm_packed_im2col(layer.packed, packer, out_f32, geom.col_cols(),
                          panels, epi);
    } else {
      qgemm_packed_im2col_u8(layer.packed, packer, out_u8, geom.col_cols(),
                             layer.out_q.scale, layer.out_q.zero_point,
                             panels, epi);
    }
    return;
  }
  auto* quads = static_cast<std::uint8_t*>(
      scratch.arena.alloc(quad_buffer_bytes(geom.col_rows(),
                                            geom.col_cols())));
  im2col_u8_quads(
      input_q, geom,
      static_cast<std::uint8_t>(layer.in_q.zero_point), quads);
  if (out_f32 != nullptr) {
    qgemm_packed(layer.packed, quads, out_f32, geom.col_cols(), epi);
  } else {
    qgemm_packed_u8(layer.packed, quads, out_u8, geom.col_cols(),
                    layer.out_q.scale, layer.out_q.zero_point, epi);
  }
}

void qlinear(const std::uint8_t* input_q, std::size_t k,
             const QuantizedLayer& layer, const float* bias, float* out_f32,
             std::uint8_t* out_u8, ConvScratch& scratch) {
  OCB_CHECK(layer.valid());
  scratch.arena.reset();
  // For N = 1 the quad layout degenerates to the input vector padded to
  // a multiple of 4 bytes.
  const std::size_t padded = quad_buffer_bytes(k, 1);
  auto* quads = static_cast<std::uint8_t*>(scratch.arena.alloc(padded));
  std::memcpy(quads, input_q, k);
  std::memset(quads + k, 0, padded - k);
  const QGemmEpilogue epi = layer.epilogue(bias);
  if (out_f32 != nullptr) {
    qgemm_packed(layer.packed, quads, out_f32, 1, epi);
  } else {
    qgemm_packed_u8(layer.packed, quads, out_u8, 1, layer.out_q.scale,
                    layer.out_q.zero_point, epi);
  }
}

}  // namespace ocb::nn
