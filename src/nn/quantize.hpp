// Post-training quantization for the inference engine.
//
// Scheme (full derivation in DESIGN.md §8):
//   - Activations: per-tensor affine u8 restricted to [0, 127] (the
//     7-bit convention the AVX2 kernel requires; see qgemm.hpp).
//     scale = (max' − min') / 127 with the range widened to include 0,
//     zero_point = clamp(round(−min'/scale), 0, 127) — so real 0 maps
//     exactly onto a representable code (padding, ReLU zeros).
//   - Weights: per-output-channel symmetric int8 in [−127, 127]
//     (−128 excluded to keep the scheme symmetric),
//     scale_w[r] = max|W[r,:]| / 127.
// Ranges come from a calibration pass: run representative frames
// through the FP32 engine and record per-node output min/max.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "nn/ops.hpp"
#include "tensor/im2col.hpp"
#include "tensor/qgemm.hpp"

namespace ocb::nn {

/// Affine u8 quantization parameters for one activation tensor.
/// real = (q − zero_point) · scale, q ∈ [0, 127].
struct TensorQuant {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
};

/// Running min/max observer fed by calibration frames.
struct TensorRange {
  float mn = std::numeric_limits<float>::max();
  float mx = std::numeric_limits<float>::lowest();

  void observe(const float* data, std::size_t n) noexcept;
  bool valid() const noexcept { return mn <= mx; }
};

/// Derive activation quantization parameters from an observed range.
/// The range is widened to include 0 and a degenerate range falls back
/// to scale 1 — quantizing an unseen tensor must not divide by zero.
TensorQuant quant_from_range(float mn, float mx) noexcept;

/// Per-node output ranges recorded over `frames` calibration frames.
struct QuantCalibration {
  std::vector<TensorRange> ranges;  ///< indexed by graph node
  int frames = 0;
};

void quantize_to_u8(const float* src, std::size_t n, const TensorQuant& q,
                    std::uint8_t* dst) noexcept;
void dequantize_u8(const std::uint8_t* src, std::size_t n,
                   const TensorQuant& q, float* dst) noexcept;

/// Everything a conv/linear node needs to execute in INT8: packed int8
/// weight panels plus the fused-epilogue constants.
struct QuantizedLayer {
  PackedQuantA packed;
  std::vector<float> row_scale;          ///< scale_in · scale_w[row]
  std::vector<std::int32_t> row_offset;  ///< zp_in · Σ_k Wq[row][k]
  TensorQuant in_q;   ///< producer's activation quantization
  TensorQuant out_q;  ///< this node's output quantization
  bool emit_u8 = false;  ///< write u8 (mid-graph) instead of float
  EpiAct act = EpiAct::kNone;

  bool valid() const noexcept { return !packed.empty(); }

  QGemmEpilogue epilogue(const float* bias) const noexcept {
    QGemmEpilogue e;
    e.scale = row_scale.data();
    e.row_offset = in_q.zero_point != 0 ? row_offset.data() : nullptr;
    e.bias = bias;
    e.act = act;
    return e;
  }
};

/// Quantize a row-major M×K fp32 weight matrix per output channel and
/// pack it for the INT8 kernel. `in_q` fixes the epilogue constants.
QuantizedLayer quantize_layer(const float* weight, std::size_t m,
                              std::size_t k, const TensorQuant& in_q,
                              const TensorQuant& out_q, EpiAct act);

/// INT8 convolution over an already-quantized u8 input image (CHW,
/// quantized with `layer.in_q`). Lowering scratch (the activation quad
/// buffer) comes from `scratch`, which is reset here — mirroring the
/// fp32 conv2d contract. Exactly one of `out_f32`/`out_u8` is non-null.
/// With `fused` (ConvAlgo::kIm2colQuantFused) the quad buffer is never
/// materialized: stripes pack on the fly and scratch use drops to
/// fused_qconv_scratch_bytes(geom).
void qconv2d(const std::uint8_t* input_q, const ConvGeometry& geom,
             const QuantizedLayer& layer, const float* bias, float* out_f32,
             std::uint8_t* out_u8, ConvScratch& scratch, bool fused = false);

/// INT8 linear over an already-quantized u8 input vector of `k`
/// features. Exactly one of `out_f32`/`out_u8` is non-null.
void qlinear(const std::uint8_t* input_q, std::size_t k,
             const QuantizedLayer& layer, const float* bias, float* out_f32,
             std::uint8_t* out_u8, ConvScratch& scratch);

}  // namespace ocb::nn
