// Graph node (layer) specifications for the inference engine.
//
// A Graph (graph.hpp) is a DAG of these specs; the Engine (engine.hpp)
// materialises weights and executes, and the Profiler (profile.hpp)
// derives per-layer FLOP/parameter/byte counts that drive the device
// simulator.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace ocb::nn {

/// Fused post-op activation.
enum class Act { kNone, kRelu, kLeakyRelu, kSilu, kSigmoid };

enum class OpKind {
  kInput,          ///< graph input placeholder
  kConv,           ///< 2D convolution + bias + activation
  kDwConv,         ///< depthwise convolution + bias + activation
  kDeconv,         ///< 2× transposed convolution (stride 2, k=4-style)
  kMaxPool,        ///< max pooling
  kUpsample,       ///< nearest-neighbour 2× upsample
  kConcat,         ///< channel concatenation
  kAdd,            ///< elementwise residual add
  kSlice,          ///< channel slice [begin, end)
  kGlobalAvgPool,  ///< spatial mean → 1×1
  kLinear,         ///< fully connected over flattened input
};

const char* op_name(OpKind kind) noexcept;

/// One node of the model DAG. Field meaning depends on `kind`; unused
/// fields stay at their defaults.
struct Node {
  OpKind kind = OpKind::kInput;
  std::vector<int> inputs;  ///< indices of producer nodes
  std::string name;         ///< diagnostic label ("backbone.stem", ...)

  int out_c = 0;    ///< conv/deconv/linear output channels
  int kernel = 1;   ///< square kernel size
  int stride = 1;
  int pad = 0;
  Act act = Act::kNone;

  int slice_begin = 0;  ///< kSlice channel range
  int slice_end = 0;
};

/// Shape of a node's output feature map (batch dim is implicit 1).
struct FeatShape {
  int c = 0, h = 0, w = 0;
  std::size_t numel() const noexcept {
    return static_cast<std::size_t>(c) * h * w;
  }
  bool operator==(const FeatShape&) const = default;
};

/// Apply an activation in place.
void apply_activation(Act act, float* data, std::size_t n) noexcept;

}  // namespace ocb::nn
