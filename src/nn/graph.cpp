#include "nn/graph.hpp"

#include "core/error.hpp"

namespace ocb::nn {

int Graph::input(int c, int h, int w) {
  OCB_CHECK_MSG(nodes_.empty(), "input() must be the first node");
  OCB_CHECK_MSG(c > 0 && h > 0 && w > 0, "input dims must be positive");
  Node node;
  node.kind = OpKind::kInput;
  node.out_c = c;
  node.kernel = h;  // kInput reuses kernel/stride to carry (h, w)
  node.stride = w;
  node.name = "input";
  return append(std::move(node));
}

int Graph::conv(int src, int out_c, int kernel, int stride, int pad, Act act,
                const std::string& name) {
  Node node;
  node.kind = OpKind::kConv;
  node.inputs = {src};
  node.out_c = out_c;
  node.kernel = kernel;
  node.stride = stride;
  node.pad = pad;
  node.act = act;
  node.name = name;
  return append(std::move(node));
}

int Graph::dwconv(int src, int kernel, int stride, int pad, Act act,
                  const std::string& name) {
  Node node;
  node.kind = OpKind::kDwConv;
  node.inputs = {src};
  node.kernel = kernel;
  node.stride = stride;
  node.pad = pad;
  node.act = act;
  node.name = name;
  return append(std::move(node));
}

int Graph::deconv(int src, int out_c, Act act, const std::string& name) {
  Node node;
  node.kind = OpKind::kDeconv;
  node.inputs = {src};
  node.out_c = out_c;
  node.kernel = 4;
  node.stride = 2;
  node.pad = 1;
  node.act = act;
  node.name = name;
  return append(std::move(node));
}

int Graph::maxpool(int src, int kernel, int stride, int pad,
                   const std::string& name) {
  Node node;
  node.kind = OpKind::kMaxPool;
  node.inputs = {src};
  node.kernel = kernel;
  node.stride = stride;
  node.pad = pad;
  node.name = name;
  return append(std::move(node));
}

int Graph::upsample2x(int src, const std::string& name) {
  Node node;
  node.kind = OpKind::kUpsample;
  node.inputs = {src};
  node.name = name;
  return append(std::move(node));
}

int Graph::concat(const std::vector<int>& srcs, const std::string& name) {
  OCB_CHECK_MSG(srcs.size() >= 2, "concat needs at least two inputs");
  Node node;
  node.kind = OpKind::kConcat;
  node.inputs = srcs;
  node.name = name;
  return append(std::move(node));
}

int Graph::add(int a, int b, const std::string& name, Act act) {
  Node node;
  node.kind = OpKind::kAdd;
  node.inputs = {a, b};
  node.name = name;
  node.act = act;
  return append(std::move(node));
}

int Graph::slice(int src, int begin_c, int end_c, const std::string& name) {
  Node node;
  node.kind = OpKind::kSlice;
  node.inputs = {src};
  node.slice_begin = begin_c;
  node.slice_end = end_c;
  node.name = name;
  return append(std::move(node));
}

int Graph::global_avg_pool(int src, const std::string& name) {
  Node node;
  node.kind = OpKind::kGlobalAvgPool;
  node.inputs = {src};
  node.name = name;
  return append(std::move(node));
}

int Graph::linear(int src, int out_features, Act act,
                  const std::string& name) {
  Node node;
  node.kind = OpKind::kLinear;
  node.inputs = {src};
  node.out_c = out_features;
  node.act = act;
  node.name = name;
  return append(std::move(node));
}

void Graph::mark_output(int node_index) {
  OCB_CHECK(node_index >= 0 && node_index < node_count());
  outputs_.push_back(node_index);
}

const Node& Graph::node(int i) const {
  OCB_CHECK(i >= 0 && i < node_count());
  return nodes_[static_cast<std::size_t>(i)];
}

const FeatShape& Graph::shape(int i) const {
  OCB_CHECK(i >= 0 && i < node_count());
  return shapes_[static_cast<std::size_t>(i)];
}

FeatShape Graph::input_shape() const {
  OCB_CHECK_MSG(!nodes_.empty(), "empty graph");
  return shapes_[0];
}

int Graph::append(Node node) {
  for (int src : node.inputs)
    OCB_CHECK_MSG(src >= 0 && src < node_count(),
                  "node references unknown input");
  const FeatShape out = infer_shape(node);
  nodes_.push_back(std::move(node));
  shapes_.push_back(out);
  return node_count() - 1;
}

FeatShape Graph::infer_shape(const Node& node) const {
  auto in = [&](std::size_t i) -> const FeatShape& {
    return shapes_[static_cast<std::size_t>(node.inputs[i])];
  };
  auto conv_hw = [&](const FeatShape& s) {
    const int h = (s.h + 2 * node.pad - node.kernel) / node.stride + 1;
    const int w = (s.w + 2 * node.pad - node.kernel) / node.stride + 1;
    OCB_CHECK_MSG(h > 0 && w > 0,
                  "op '" + node.name + "' produces an empty feature map");
    return std::pair{h, w};
  };

  switch (node.kind) {
    case OpKind::kInput:
      return {node.out_c, node.kernel, node.stride};
    case OpKind::kConv: {
      OCB_CHECK_MSG(node.out_c > 0, "conv out_c must be positive");
      const auto [h, w] = conv_hw(in(0));
      return {node.out_c, h, w};
    }
    case OpKind::kDwConv: {
      const auto [h, w] = conv_hw(in(0));
      return {in(0).c, h, w};
    }
    case OpKind::kDeconv:
      return {node.out_c, in(0).h * 2, in(0).w * 2};
    case OpKind::kMaxPool: {
      const auto [h, w] = conv_hw(in(0));
      return {in(0).c, h, w};
    }
    case OpKind::kUpsample:
      return {in(0).c, in(0).h * 2, in(0).w * 2};
    case OpKind::kConcat: {
      int c = 0;
      for (std::size_t i = 0; i < node.inputs.size(); ++i) {
        OCB_CHECK_MSG(in(i).h == in(0).h && in(i).w == in(0).w,
                      "concat spatial mismatch at '" + node.name + "'");
        c += in(i).c;
      }
      return {c, in(0).h, in(0).w};
    }
    case OpKind::kAdd:
      OCB_CHECK_MSG(in(0) == in(1), "add shape mismatch at '" + node.name + "'");
      return in(0);
    case OpKind::kSlice: {
      OCB_CHECK_MSG(node.slice_begin >= 0 && node.slice_end > node.slice_begin &&
                        node.slice_end <= in(0).c,
                    "bad slice range at '" + node.name + "'");
      return {node.slice_end - node.slice_begin, in(0).h, in(0).w};
    }
    case OpKind::kGlobalAvgPool:
      return {in(0).c, 1, 1};
    case OpKind::kLinear:
      OCB_CHECK_MSG(node.out_c > 0, "linear out features must be positive");
      return {node.out_c, 1, 1};
  }
  throw Error("unreachable op kind");
}

std::size_t Graph::node_params(int i) const {
  const Node& nd = node(i);
  const auto& in0 = nd.inputs.empty() ? FeatShape{} : shape(nd.inputs[0]);
  switch (nd.kind) {
    case OpKind::kConv:
      return static_cast<std::size_t>(nd.out_c) * in0.c * nd.kernel * nd.kernel +
             static_cast<std::size_t>(nd.out_c);
    case OpKind::kDwConv:
      return static_cast<std::size_t>(in0.c) * nd.kernel * nd.kernel +
             static_cast<std::size_t>(in0.c);
    case OpKind::kDeconv:
      return static_cast<std::size_t>(nd.out_c) * in0.c * nd.kernel * nd.kernel +
             static_cast<std::size_t>(nd.out_c);
    case OpKind::kLinear:
      return static_cast<std::size_t>(nd.out_c) * in0.numel() +
             static_cast<std::size_t>(nd.out_c);
    default:
      return 0;
  }
}

double Graph::node_flops(int i) const {
  const Node& nd = node(i);
  const FeatShape out = shape(i);
  const auto& in0 = nd.inputs.empty() ? FeatShape{} : shape(nd.inputs[0]);
  const double out_px = static_cast<double>(out.h) * out.w;
  switch (nd.kind) {
    case OpKind::kConv:
      return 2.0 * in0.c * nd.kernel * nd.kernel * out.c * out_px;
    case OpKind::kDwConv:
      return 2.0 * nd.kernel * nd.kernel * out.c * out_px;
    case OpKind::kDeconv:
      return 2.0 * in0.c * nd.kernel * nd.kernel * out.c * out_px;
    case OpKind::kMaxPool:
      return static_cast<double>(nd.kernel) * nd.kernel * out.c * out_px;
    case OpKind::kUpsample:
    case OpKind::kConcat:
    case OpKind::kSlice:
      return static_cast<double>(out.numel());
    case OpKind::kAdd:
      return static_cast<double>(out.numel());
    case OpKind::kGlobalAvgPool:
      return static_cast<double>(in0.numel());
    case OpKind::kLinear:
      return 2.0 * static_cast<double>(in0.numel()) * out.c;
    case OpKind::kInput:
      return 0.0;
  }
  return 0.0;
}

std::size_t Graph::param_count() const noexcept {
  std::size_t total = 0;
  for (int i = 0; i < node_count(); ++i) total += node_params(i);
  return total;
}

double Graph::size_mb() const noexcept {
  return static_cast<double>(param_count()) * 4.0 / (1024.0 * 1024.0);
}

double Graph::flops() const noexcept {
  double total = 0.0;
  for (int i = 0; i < node_count(); ++i) total += node_flops(i);
  return total;
}

}  // namespace ocb::nn
