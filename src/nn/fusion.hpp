// Graph fusion and liveness-driven activation memory planning.
//
// Three cooperating transforms, all decided here as a pure function of
// (graph, per-node conv plans, config) so tests can probe decisions
// without an engine:
//
//   1. Residual fusion — an elementwise Add whose one input is a
//      single-consumer Conv folds into that conv's GEMM epilogue
//      (EpiMode, see tensor/gemm.hpp): the conv writes straight into
//      the add's buffer, combining with the other operand in the
//      write-back, and the Add node is skipped. This removes a full
//      read+read+write pass over the feature map.
//
//   2. Concat copy elimination — a single-consumer producer feeding a
//      channel Concat is *placed*: its output buffer becomes a view
//      into the concat's buffer at the right channel offset, so the
//      concat's copy for that input disappears. Placements chain
//      (concat of concat).
//
//   3. Liveness-driven arena planning — every remaining root buffer
//      gets a live range over the topological execution order;
//      buffers whose ranges do not overlap share arena offsets
//      (greedy best-fit, largest first). The plan reports peak arena
//      bytes before/after so benches can gate the reduction.
//
// The planner only *decides*; Engine::prepare() applies the plan by
// re-pointing per-node activation bases (see engine.hpp).
#pragma once

#include <cstddef>
#include <vector>

#include "nn/conv_plan.hpp"
#include "nn/graph.hpp"
#include "tensor/gemm.hpp"

namespace ocb::nn {

/// Fusion toggles carried inside a PlanRequest. All default off: the
/// engine's baseline behaviour (one buffer per node, every op
/// materialized) is unchanged unless a caller opts in.
struct FusionConfig {
  bool fuse_residual = false;  ///< fold Add into producer-conv epilogues
  bool fuse_concat = false;    ///< place producers into concat buffers
  bool plan_memory = false;    ///< share offsets between dead buffers

  bool any() const noexcept {
    return fuse_residual || fuse_concat || plan_memory;
  }
  bool operator==(const FusionConfig&) const = default;
};

/// Per-node fusion decision.
struct NodeFusion {
  /// Node is elided from execution (a residual Add folded into its
  /// producer conv). Its buffer still exists — the conv writes there.
  bool skip = false;

  /// This conv carries a fused residual add: it writes into
  /// `residual_out`'s buffer with the epilogue below instead of its
  /// own. The engine preloads that buffer with `residual_src` (free
  /// when the add was aliased onto it, one copy otherwise).
  bool residual_add = false;

  /// The conv was planned as materialized im2col (no EpiMode support)
  /// but a residual add wants to fold into it: the engine must re-plan
  /// the node as kIm2colFused. Only ever set alongside residual_add,
  /// and only for dense-storage kIm2colGemm plans — on such shapes the
  /// two paths measure within noise of each other while the fold
  /// removes a whole read+read+write pass the estimates cannot see.
  bool upgrade_fused = false;
  EpiMode mode = EpiMode::kStore;
  Act act = Act::kNone;   ///< effective epilogue activation
  int residual_src = -1;  ///< the add's other operand (x)
  int residual_out = -1;  ///< the skipped Add node (write target)

  /// Output lives inside `place_parent`'s buffer at
  /// `place_offset_floats` within each image (chains resolve through
  /// MemoryPlan::root_of). -1: the node owns a root buffer.
  int place_parent = -1;
  std::size_t place_offset_floats = 0;
};

/// The complete fusion + memory decision for one (graph, plans,
/// config, max_batch) tuple.
struct MemoryPlan {
  std::vector<NodeFusion> nodes;  ///< one entry per graph node

  /// Arena offset (floats) of every root node's buffer; only
  /// meaningful when `planned`. Placed nodes resolve through root_of.
  std::vector<std::size_t> offsets;
  bool planned = false;  ///< offsets valid (config.plan_memory was on)

  /// Peak activation floats: the planned arena size when `planned`,
  /// else the naive sum (one live buffer per root).
  std::size_t arena_floats = 0;
  /// One-buffer-per-node total (the engine's baseline allocation).
  std::size_t naive_floats = 0;

  int residual_fused = 0;  ///< Add nodes folded into conv epilogues
  int concat_elided = 0;   ///< concat inputs placed (copies removed)

  /// Resolve a node's placement chain: returns the root node whose
  /// buffer holds it and accumulates the within-image float offset.
  int root_of(int node, std::size_t* offset_floats) const noexcept;
};

/// Decide fusion and memory placement for `graph` executing under the
/// given per-node conv plans with activation batch capacity
/// `max_batch`. Pure function; never touches engine state. Residual
/// fusion only engages for dense-storage convs planned as
/// kDirectGemm / kWinograd / kIm2colFused (the kernels with EpiMode
/// support); callers running kInt8 must pass a default config (the
/// quantized path keeps per-node u8 buffers).
MemoryPlan plan_fusion(const Graph& graph, const std::vector<ConvPlan>& plans,
                       const FusionConfig& config, int max_batch);

}  // namespace ocb::nn
