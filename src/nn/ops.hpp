// Kernel implementations for the inference engine.
//
// All buffers are contiguous CHW float32 for a batch of one; the Engine
// drives these per node. Convolution lowers to im2col + GEMM with the
// bias + activation epilogue fused into the GEMM write-back; the other
// ops are direct loops (they are bandwidth-bound and simple).
//
// Two conv entry points: the pointer-weight overload packs the weight
// matrix per call (tests, one-shot users), while the PackedA overload
// consumes a weight panel cached by the Engine at load time — the
// steady-state frame path.
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "tensor/arena.hpp"
#include "tensor/gemm.hpp"
#include "tensor/im2col.hpp"
#include "tensor/sgemm_sparse.hpp"

namespace ocb::nn {

/// Scratch space reused across conv invocations; the arena is reserved
/// once from the engine's dry-run plan so the im2col buffer costs a
/// pointer bump per layer instead of an allocator round-trip.
struct ConvScratch {
  Arena arena;
};

/// The GEMM-epilogue activation matching `act`.
EpiAct to_epilogue_act(Act act) noexcept;

/// output[out_c × oh × ow] = act(W · im2col(input) + b).
/// `weight` is [out_c × (in_c·k·k)] row-major, `bias` is [out_c].
void conv2d(const float* input, const ConvGeometry& geom, int out_c,
            const float* weight, const float* bias, Act act, float* output,
            ConvScratch& scratch);

/// conv2d over a pre-packed weight matrix (see PackedA) — no per-call
/// packing, fused epilogue, arena-backed im2col.
void conv2d(const float* input, const ConvGeometry& geom,
            const PackedA& weight, const float* bias, Act act, float* output,
            ConvScratch& scratch);

/// Batched conv2d over a pre-packed weight matrix: lowers `batch` CHW
/// images (`in_stride` floats apart) side by side into one
/// [col_rows × batch·col_cols] column matrix, runs a *single* fused
/// GEMM across all columns — the micro-batching hot path, which
/// amortises per-call overhead and fills SIMD column tiles that a
/// small single-image spatial extent leaves short — then scatters the
/// channel-major result back to per-image CHW planes (`out_stride`
/// floats apart). batch == 1 is exactly conv2d.
void conv2d_batched(const float* input, std::size_t in_stride, int batch,
                    const ConvGeometry& geom, const PackedA& weight,
                    const float* bias, Act act, float* output,
                    std::size_t out_stride, ConvScratch& scratch);

/// 1×1 stride-1 pad-0 conv executed directly on the CHW input: the
/// input already *is* the [in_c × h·w] column matrix, so the lowering
/// copy (and its scratch) is skipped entirely. Batched images run one
/// GEMM each. The planner picks this when the copy traffic outweighs
/// the widened-GEMM benefit (see nn/planner.hpp). `mode` fuses a
/// residual add into the GEMM epilogue: output is preloaded with (or
/// aliased onto) the residual and combined per EpiMode.
void conv2d_direct1x1(const float* input, std::size_t in_stride, int batch,
                      const ConvGeometry& geom, const PackedA& weight,
                      const float* bias, Act act, float* output,
                      std::size_t out_stride,
                      EpiMode mode = EpiMode::kStore);

/// Fused im2col-free conv (ConvAlgo::kIm2colFused): column stripes are
/// packed straight from each CHW image and consumed by the stripe GEMM
/// before the next stripe is packed, so the full column matrix never
/// exists (see gemm_packed_im2col). Scratch use is
/// fused_conv_scratch_floats(geom) — independent of the output size.
/// `mode` fuses a residual add exactly as in conv2d_direct1x1.
void conv2d_fused(const float* input, std::size_t in_stride, int batch,
                  const ConvGeometry& geom, const PackedA& weight,
                  const float* bias, Act act, float* output,
                  std::size_t out_stride, ConvScratch& scratch,
                  EpiMode mode = EpiMode::kStore);

/// Compressed-storage variants of the conv GEMM paths: identical
/// lowering, arena use and fused epilogue, but the GEMM reads
/// PackedHalfA (16-bit weights widened in-register) or PackedSparseA
/// (surviving-column panels) instead of dense fp32 panels. The engine
/// dispatches on ConvPlan::storage (see nn/conv_plan.hpp).
void conv2d(const float* input, const ConvGeometry& geom,
            const PackedHalfA& weight, const float* bias, Act act,
            float* output, ConvScratch& scratch);
void conv2d(const float* input, const ConvGeometry& geom,
            const PackedSparseA& weight, const float* bias, Act act,
            float* output, ConvScratch& scratch);
void conv2d_batched(const float* input, std::size_t in_stride, int batch,
                    const ConvGeometry& geom, const PackedHalfA& weight,
                    const float* bias, Act act, float* output,
                    std::size_t out_stride, ConvScratch& scratch);
void conv2d_batched(const float* input, std::size_t in_stride, int batch,
                    const ConvGeometry& geom, const PackedSparseA& weight,
                    const float* bias, Act act, float* output,
                    std::size_t out_stride, ConvScratch& scratch);
void conv2d_direct1x1(const float* input, std::size_t in_stride, int batch,
                      const ConvGeometry& geom, const PackedHalfA& weight,
                      const float* bias, Act act, float* output,
                      std::size_t out_stride);
void conv2d_direct1x1(const float* input, std::size_t in_stride, int batch,
                      const ConvGeometry& geom, const PackedSparseA& weight,
                      const float* bias, Act act, float* output,
                      std::size_t out_stride);

/// Winograd F(2×2,3×3) conv (kernel 3, stride 1 only) over weight
/// panels pre-transformed by winograd::pack_weights: per batch, lower
/// all images' tiles side by side, run the 16 pointwise GEMMs, and
/// inverse-transform with bias + activation fused. Layout contracts
/// (ld/col_offset) match conv2d_batched's wide-im2col convention; V
/// and M live in the arena (see winograd::scratch_floats).
void conv2d_winograd(const float* input, std::size_t in_stride, int batch,
                     const ConvGeometry& geom,
                     const std::vector<PackedA>& u_panels, const float* bias,
                     Act act, float* output, std::size_t out_stride,
                     ConvScratch& scratch, EpiMode mode = EpiMode::kStore);

/// Depthwise conv: one k×k filter per channel. `weight` is [c × k·k].
/// Bias and activation are fused into the output loop.
void dwconv2d(const float* input, const ConvGeometry& geom,
              const float* weight, const float* bias, Act act, float* output);

/// Transposed conv, kernel 4, stride 2, pad 1 (exact 2× upsampling).
/// `weight` is [in_c × out_c × 4 × 4].
void deconv2d_2x(const float* input, int in_c, int in_h, int in_w, int out_c,
                 const float* weight, const float* bias, Act act,
                 float* output);

void maxpool2d(const float* input, const ConvGeometry& geom, float* output);

void upsample2x_nearest(const float* input, int c, int h, int w,
                        float* output);

/// Concatenate along channels; `srcs[i]` has `channels[i]` channels and
/// common spatial size h×w.
void concat_channels(const std::vector<const float*>& srcs,
                     const std::vector<int>& channels, int h, int w,
                     float* output);

void add_elementwise(const float* a, const float* b, std::size_t n,
                     float* output);

void slice_channels(const float* input, int c, int h, int w, int begin,
                    int end, float* output);

void global_avg_pool(const float* input, int c, int h, int w, float* output);

/// output[out] = act(W · flatten(input) + b); weight is [out × in].
void linear(const float* input, std::size_t in_features, int out_features,
            const float* weight, const float* bias, Act act, float* output);

/// linear over a pre-packed weight matrix with fused epilogue.
void linear(const float* input, const PackedA& weight, const float* bias,
            Act act, float* output);

/// linear over compressed weight panels — the n == 1 GEMV shape is the
/// bandwidth-bound case half storage exists for.
void linear(const float* input, const PackedHalfA& weight, const float* bias,
            Act act, float* output);
void linear(const float* input, const PackedSparseA& weight,
            const float* bias, Act act, float* output);

}  // namespace ocb::nn
