#include "nn/fusion.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace ocb::nn {

namespace {

/// Kernels with EpiMode support: the residual combine happens in the
/// GEMM / inverse-transform write-back, which only the dense-storage
/// direct, Winograd and fused-stripe paths implement (the compressed
/// and materialized-batched kernels always run kStore).
bool residual_capable(const ConvPlan& plan) noexcept {
  if (plan.storage != WeightStorage::kDense) return false;
  return plan.algo == ConvAlgo::kDirectGemm ||
         plan.algo == ConvAlgo::kWinograd ||
         plan.algo == ConvAlgo::kIm2colFused;
}

/// A dense materialized-im2col plan can be re-planned as kIm2colFused
/// to gain the epilogue: the planner only prefers materialized on
/// cache-resident shapes where the two measure within noise, and the
/// fold saves the add's full read+read+write pass — a trade the
/// per-node estimates cannot price. The engine applies the switch when
/// NodeFusion::upgrade_fused is set.
bool residual_upgradeable(const ConvPlan& plan) noexcept {
  return plan.algo == ConvAlgo::kIm2colGemm &&
         plan.storage == WeightStorage::kDense;
}

bool is_output(const Graph& graph, int node) noexcept {
  const std::vector<int>& outs = graph.outputs();
  return std::find(outs.begin(), outs.end(), node) != outs.end();
}

}  // namespace

int MemoryPlan::root_of(int node, std::size_t* offset_floats) const noexcept {
  int r = node;
  std::size_t off = 0;
  while (nodes[static_cast<std::size_t>(r)].place_parent != -1) {
    off += nodes[static_cast<std::size_t>(r)].place_offset_floats;
    r = nodes[static_cast<std::size_t>(r)].place_parent;
  }
  if (offset_floats != nullptr) *offset_floats = off;
  return r;
}

MemoryPlan plan_fusion(const Graph& graph, const std::vector<ConvPlan>& plans,
                       const FusionConfig& config, int max_batch) {
  const int n = graph.node_count();
  OCB_CHECK_MSG(plans.size() == static_cast<std::size_t>(n),
                "plan_fusion needs one ConvPlan entry per graph node");
  OCB_CHECK_MSG(max_batch >= 1, "plan_fusion needs a positive max_batch");

  MemoryPlan mp;
  mp.nodes.assign(static_cast<std::size_t>(n), NodeFusion{});
  for (int i = 0; i < n; ++i)
    mp.naive_floats += static_cast<std::size_t>(max_batch) *
                       graph.shape(i).numel();

  std::vector<std::vector<int>> consumers(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j)
    for (int s : graph.node(j).inputs)
      consumers[static_cast<std::size_t>(s)].push_back(j);

  // --- Pass 1: concat placement -------------------------------------
  // A producer whose only reader is one concat (and that appears once
  // in its input list) writes directly into the concat's buffer at its
  // channel offset. Processing in node order lets placements chain:
  // an inner concat placed here resolves its own placed children
  // through root_of.
  if (config.fuse_concat) {
    for (int k = 0; k < n; ++k) {
      const Node& nd = graph.node(k);
      if (nd.kind != OpKind::kConcat) continue;
      const std::size_t hw = static_cast<std::size_t>(graph.shape(k).h) *
                             graph.shape(k).w;
      std::size_t coff = 0;
      for (std::size_t a = 0; a < nd.inputs.size(); ++a) {
        const int s = nd.inputs[a];
        const std::size_t su = static_cast<std::size_t>(s);
        const std::size_t off = coff;
        coff += static_cast<std::size_t>(graph.shape(s).c) * hw;
        if (graph.node(s).kind == OpKind::kInput) continue;
        if (is_output(graph, s)) continue;
        if (mp.nodes[su].place_parent != -1) continue;
        if (consumers[su].size() != 1) continue;
        // A duplicated operand must be copied into both slots.
        if (std::count(nd.inputs.begin(), nd.inputs.end(), s) != 1) continue;
        mp.nodes[su].place_parent = k;
        mp.nodes[su].place_offset_floats = off;
        ++mp.concat_elided;
      }
    }
  }

  // --- Pass 2: residual fusion --------------------------------------
  if (config.fuse_residual) {
    for (int a = 0; a < n; ++a) {
      const Node& nd = graph.node(a);
      if (nd.kind != OpKind::kAdd || mp.nodes[a].skip) continue;
      const int x0 = nd.inputs[0], x1 = nd.inputs[1];
      if (x0 == x1) continue;  // self-add: 2·conv, not a residual
      // Prefer folding into the second operand (the conventional
      // `x + F(x)` shape); fall back to the first.
      const auto eligible = [&](int c) {
        const std::size_t cu = static_cast<std::size_t>(c);
        if (graph.node(c).kind != OpKind::kConv) return false;
        if (!residual_capable(plans[cu]) &&
            !residual_upgradeable(plans[cu]))
          return false;
        if (consumers[cu].size() != 1) return false;  // only this add
        if (is_output(graph, c)) return false;
        if (mp.nodes[cu].place_parent != -1 || mp.nodes[cu].skip)
          return false;
        // Exactly one of the two activations can run in the epilogue.
        return graph.node(c).act == Act::kNone || nd.act == Act::kNone;
      };
      const int conv = eligible(x1) ? x1 : (eligible(x0) ? x0 : -1);
      if (conv == -1) continue;
      const int other = conv == x1 ? x0 : x1;
      const std::size_t cu = static_cast<std::size_t>(conv);
      NodeFusion& cf = mp.nodes[cu];
      cf.upgrade_fused = !residual_capable(plans[cu]);
      cf.residual_add = true;
      cf.residual_src = other;
      cf.residual_out = a;
      if (graph.node(conv).act == Act::kNone) {
        // out = add_act(x + conv); the activation sees the sum.
        cf.mode = EpiMode::kAccThenAct;
        cf.act = nd.act;
      } else {
        // out = x + conv_act(conv); activate first, then accumulate.
        cf.mode = EpiMode::kActThenAcc;
        cf.act = graph.node(conv).act;
      }
      mp.nodes[static_cast<std::size_t>(a)].skip = true;
      ++mp.residual_fused;

      // Alias the add's buffer onto `other` when the sum can form in
      // place: the conv's read-modify-write touches each element once,
      // so overwriting is safe as long as nothing reads `other` after
      // the conv runs and neither buffer is already a view.
      const std::size_t ou = static_cast<std::size_t>(other);
      bool alias = graph.node(other).kind != OpKind::kInput &&
                   !is_output(graph, other) &&
                   mp.nodes[ou].place_parent == -1 &&
                   mp.nodes[static_cast<std::size_t>(a)].place_parent == -1;
      if (alias) {
        for (int t : consumers[ou])
          if (t != a && t >= conv) alias = false;
      }
      if (alias) {
        mp.nodes[static_cast<std::size_t>(a)].place_parent = other;
        mp.nodes[static_cast<std::size_t>(a)].place_offset_floats = 0;
      }
    }
  }

  // --- Pass 3: liveness + greedy best-fit offsets -------------------
  // def_time: when a buffer first holds live data. A placed child or a
  // residual-fused conv writes into its root's buffer *before* the
  // root's own node index, so roots inherit the earliest writer.
  std::vector<int> def_time(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) def_time[static_cast<std::size_t>(i)] = i;
  for (int i = 0; i < n; ++i) {
    const NodeFusion& f = mp.nodes[static_cast<std::size_t>(i)];
    if (f.residual_add)
      def_time[static_cast<std::size_t>(f.residual_out)] = std::min(
          def_time[static_cast<std::size_t>(f.residual_out)], i);
  }

  struct Range {
    int root = 0;
    int def = 0;
    int last = 0;
    std::size_t floats = 0;
  };
  std::vector<Range> ranges;
  std::vector<int> root_index(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    if (mp.nodes[static_cast<std::size_t>(i)].place_parent != -1) continue;
    Range r;
    r.root = i;
    r.def = def_time[static_cast<std::size_t>(i)];
    r.last = is_output(graph, i) ? n : i;
    r.floats = static_cast<std::size_t>(max_batch) * graph.shape(i).numel();
    root_index[static_cast<std::size_t>(i)] = static_cast<int>(ranges.size());
    ranges.push_back(r);
  }
  // Fold every node's definition and uses into its root's range. A
  // consumer of any member keeps the whole root buffer alive; skipped
  // adds read nothing themselves but their consumers do.
  for (int i = 0; i < n; ++i) {
    const int root = mp.root_of(i, nullptr);
    Range& r = ranges[static_cast<std::size_t>(
        root_index[static_cast<std::size_t>(root)])];
    r.def = std::min(r.def, def_time[static_cast<std::size_t>(i)]);
    if (is_output(graph, i)) r.last = n;
    for (int t : consumers[static_cast<std::size_t>(i)])
      r.last = std::max(r.last, t);
  }

  if (!config.plan_memory) {
    mp.arena_floats = mp.naive_floats;
    return mp;
  }

  // Largest-first best-fit: each root takes the lowest offset that
  // avoids every already-placed root whose live range overlaps. This
  // is the classic greedy used by static DNN memory planners — not
  // optimal, but within a few percent on chain-heavy vision graphs.
  std::vector<std::size_t> order(ranges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (ranges[a].floats != ranges[b].floats)
      return ranges[a].floats > ranges[b].floats;
    return ranges[a].def < ranges[b].def;
  });

  mp.offsets.assign(static_cast<std::size_t>(n), 0);
  std::vector<char> assigned(ranges.size(), 0);
  std::vector<std::pair<std::size_t, std::size_t>> taken;  // offset, end
  for (std::size_t oi : order) {
    const Range& r = ranges[oi];
    taken.clear();
    for (std::size_t pj = 0; pj < ranges.size(); ++pj) {
      if (assigned[pj] == 0) continue;
      const Range& p = ranges[pj];
      if (r.def <= p.last && p.def <= r.last) {
        const std::size_t po =
            mp.offsets[static_cast<std::size_t>(p.root)];
        taken.emplace_back(po, po + p.floats);
      }
    }
    std::sort(taken.begin(), taken.end());
    std::size_t off = 0;
    for (const auto& [lo, hi] : taken) {
      if (off + r.floats <= lo) break;
      off = std::max(off, hi);
    }
    mp.offsets[static_cast<std::size_t>(r.root)] = off;
    assigned[oi] = 1;
    mp.arena_floats = std::max(mp.arena_floats, off + r.floats);
  }
  mp.planned = true;
  return mp;
}

}  // namespace ocb::nn
