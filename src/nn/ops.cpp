#include "nn/ops.hpp"

#include <algorithm>
#include <cstring>
#include <limits>

#include "tensor/gemm.hpp"
#include "tensor/winograd.hpp"

namespace ocb::nn {

EpiAct to_epilogue_act(Act act) noexcept {
  switch (act) {
    case Act::kNone: return EpiAct::kNone;
    case Act::kRelu: return EpiAct::kRelu;
    case Act::kLeakyRelu: return EpiAct::kLeakyRelu;
    case Act::kSilu: return EpiAct::kSilu;
    case Act::kSigmoid: return EpiAct::kSigmoid;
  }
  return EpiAct::kNone;
}

namespace {

/// Bump-allocate the column matrix and lower the input onto it. The
/// arena rewinds per call: the buffer only lives for the GEMM below.
float* im2col_scratch(const float* input, const ConvGeometry& geom,
                      ConvScratch& scratch) {
  scratch.arena.reset();
  float* col = scratch.arena.alloc_floats(geom.col_rows() * geom.col_cols());
  im2col(input, geom, col);
  return col;
}

inline float activate_scalar(Act act, float v) noexcept {
  switch (act) {
    case Act::kNone: return v;
    case Act::kRelu: return v < 0.0f ? 0.0f : v;
    case Act::kLeakyRelu: return v < 0.0f ? kLeakySlope * v : v;
    case Act::kSilu: return fast_silu(v);
    case Act::kSigmoid: return fast_sigmoid(v);
  }
  return v;
}

/// One name for the fused GEMM over any packed-weight format, so the
/// conv/linear drivers below are written once and instantiated per
/// storage.
inline void gemm_any(const PackedA& w, const float* b, float* c,
                     std::size_t n, const GemmEpilogue& epi) {
  gemm_packed(w, b, c, n, /*accumulate=*/false, epi);
}
inline void gemm_any(const PackedHalfA& w, const float* b, float* c,
                     std::size_t n, const GemmEpilogue& epi) {
  gemm_packed_half(w, b, c, n, /*accumulate=*/false, epi);
}
inline void gemm_any(const PackedSparseA& w, const float* b, float* c,
                     std::size_t n, const GemmEpilogue& epi) {
  gemm_packed_sparse(w, b, c, n, /*accumulate=*/false, epi);
}

template <typename Packed>
void conv2d_impl(const float* input, const ConvGeometry& geom,
                 const Packed& weight, const float* bias, Act act,
                 float* output, ConvScratch& scratch) {
  const float* col = im2col_scratch(input, geom, scratch);
  gemm_any(weight, col, output, geom.col_cols(),
           GemmEpilogue{bias, to_epilogue_act(act)});
}

template <typename Packed>
void conv2d_batched_impl(const float* input, std::size_t in_stride, int batch,
                         const ConvGeometry& geom, const Packed& weight,
                         const float* bias, Act act, float* output,
                         std::size_t out_stride, ConvScratch& scratch) {
  OCB_CHECK_MSG(batch >= 1, "conv2d_batched needs at least one image");
  if (batch == 1) {
    conv2d_impl(input, geom, weight, bias, act, output, scratch);
    return;
  }
  const std::size_t m = weight.rows();
  const std::size_t n_img = geom.col_cols();
  const std::size_t n_tot = n_img * static_cast<std::size_t>(batch);
  scratch.arena.reset();
  float* col = scratch.arena.alloc_floats(geom.col_rows() * n_tot);
  for (int b = 0; b < batch; ++b) {
    im2col(input + static_cast<std::size_t>(b) * in_stride, geom, col, n_tot,
           static_cast<std::size_t>(b) * n_img);
  }
  // One GEMM across all images: column b·n_img+j of `wide` is pixel j of
  // image b, so each image's columns see the exact single-image k-order
  // and the wide tiles keep the SIMD kernel saturated even when n_img is
  // smaller than a column block.
  float* wide = scratch.arena.alloc_floats(m * n_tot);
  gemm_any(weight, col, wide, n_tot, GemmEpilogue{bias, to_epilogue_act(act)});
  // Scatter channel rows back into per-image CHW planes.
  for (int b = 0; b < batch; ++b) {
    float* dst = output + static_cast<std::size_t>(b) * out_stride;
    const float* src = wide + static_cast<std::size_t>(b) * n_img;
    for (std::size_t c = 0; c < m; ++c) {
      std::memcpy(dst + c * n_img, src + c * n_tot, n_img * sizeof(float));
    }
  }
}

template <typename Packed>
void conv2d_direct1x1_impl(const float* input, std::size_t in_stride,
                           int batch, const ConvGeometry& geom,
                           const Packed& weight, const float* bias, Act act,
                           float* output, std::size_t out_stride,
                           EpiMode mode = EpiMode::kStore) {
  OCB_CHECK_MSG(geom.kernel_h == 1 && geom.kernel_w == 1 &&
                    geom.stride == 1 && geom.pad == 0,
                "conv2d_direct1x1 needs a 1x1 stride-1 pad-0 conv");
  const GemmEpilogue epi{bias, to_epilogue_act(act), mode};
  for (int b = 0; b < batch; ++b) {
    gemm_any(weight, input + static_cast<std::size_t>(b) * in_stride,
             output + static_cast<std::size_t>(b) * out_stride,
             geom.col_cols(), epi);
  }
}

}  // namespace

void conv2d(const float* input, const ConvGeometry& geom, int out_c,
            const float* weight, const float* bias, Act act, float* output,
            ConvScratch& scratch) {
  const float* col = im2col_scratch(input, geom, scratch);
  gemm_ex(weight, col, output, static_cast<std::size_t>(out_c),
          geom.col_rows(), geom.col_cols(), /*accumulate=*/false,
          GemmEpilogue{bias, to_epilogue_act(act)});
}

void conv2d(const float* input, const ConvGeometry& geom,
            const PackedA& weight, const float* bias, Act act, float* output,
            ConvScratch& scratch) {
  conv2d_impl(input, geom, weight, bias, act, output, scratch);
}

void conv2d(const float* input, const ConvGeometry& geom,
            const PackedHalfA& weight, const float* bias, Act act,
            float* output, ConvScratch& scratch) {
  conv2d_impl(input, geom, weight, bias, act, output, scratch);
}

void conv2d(const float* input, const ConvGeometry& geom,
            const PackedSparseA& weight, const float* bias, Act act,
            float* output, ConvScratch& scratch) {
  conv2d_impl(input, geom, weight, bias, act, output, scratch);
}

void conv2d_batched(const float* input, std::size_t in_stride, int batch,
                    const ConvGeometry& geom, const PackedA& weight,
                    const float* bias, Act act, float* output,
                    std::size_t out_stride, ConvScratch& scratch) {
  conv2d_batched_impl(input, in_stride, batch, geom, weight, bias, act,
                      output, out_stride, scratch);
}

void conv2d_batched(const float* input, std::size_t in_stride, int batch,
                    const ConvGeometry& geom, const PackedHalfA& weight,
                    const float* bias, Act act, float* output,
                    std::size_t out_stride, ConvScratch& scratch) {
  conv2d_batched_impl(input, in_stride, batch, geom, weight, bias, act,
                      output, out_stride, scratch);
}

void conv2d_batched(const float* input, std::size_t in_stride, int batch,
                    const ConvGeometry& geom, const PackedSparseA& weight,
                    const float* bias, Act act, float* output,
                    std::size_t out_stride, ConvScratch& scratch) {
  conv2d_batched_impl(input, in_stride, batch, geom, weight, bias, act,
                      output, out_stride, scratch);
}

void conv2d_direct1x1(const float* input, std::size_t in_stride, int batch,
                      const ConvGeometry& geom, const PackedA& weight,
                      const float* bias, Act act, float* output,
                      std::size_t out_stride, EpiMode mode) {
  conv2d_direct1x1_impl(input, in_stride, batch, geom, weight, bias, act,
                        output, out_stride, mode);
}

void conv2d_fused(const float* input, std::size_t in_stride, int batch,
                  const ConvGeometry& geom, const PackedA& weight,
                  const float* bias, Act act, float* output,
                  std::size_t out_stride, ConvScratch& scratch,
                  EpiMode mode) {
  OCB_CHECK_MSG(batch >= 1, "conv2d_fused needs at least one image");
  scratch.arena.reset();
  float* panels =
      scratch.arena.alloc_floats(fused_conv_scratch_floats(geom));
  const GemmEpilogue epi{bias, to_epilogue_act(act), mode};
  for (int b = 0; b < batch; ++b) {
    const Im2colPanelPacker packer(
        input + static_cast<std::size_t>(b) * in_stride, geom);
    gemm_packed_im2col(weight, packer,
                       output + static_cast<std::size_t>(b) * out_stride,
                       geom.col_cols(), panels, epi);
  }
}

void conv2d_direct1x1(const float* input, std::size_t in_stride, int batch,
                      const ConvGeometry& geom, const PackedHalfA& weight,
                      const float* bias, Act act, float* output,
                      std::size_t out_stride) {
  conv2d_direct1x1_impl(input, in_stride, batch, geom, weight, bias, act,
                        output, out_stride);
}

void conv2d_direct1x1(const float* input, std::size_t in_stride, int batch,
                      const ConvGeometry& geom, const PackedSparseA& weight,
                      const float* bias, Act act, float* output,
                      std::size_t out_stride) {
  conv2d_direct1x1_impl(input, in_stride, batch, geom, weight, bias, act,
                        output, out_stride);
}

void conv2d_winograd(const float* input, std::size_t in_stride, int batch,
                     const ConvGeometry& geom,
                     const std::vector<PackedA>& u_panels, const float* bias,
                     Act act, float* output, std::size_t out_stride,
                     ConvScratch& scratch, EpiMode mode) {
  OCB_CHECK_MSG(batch >= 1, "conv2d_winograd needs at least one image");
  OCB_CHECK_MSG(winograd::applicable(geom),
                "conv2d_winograd needs a 3x3 stride-1 conv");
  OCB_CHECK_MSG(
      u_panels.size() == static_cast<std::size_t>(winograd::kTileElems),
      "conv2d_winograd needs 16 transformed weight panels");
  const std::size_t out_c = u_panels.front().rows();
  const std::size_t in_c = static_cast<std::size_t>(geom.in_c);
  const std::size_t p_img = winograd::tile_count(geom);
  const std::size_t ld = p_img * static_cast<std::size_t>(batch);
  scratch.arena.reset();
  float* v = scratch.arena.alloc_floats(
      static_cast<std::size_t>(winograd::kTileElems) * in_c * ld);
  float* m = scratch.arena.alloc_floats(
      static_cast<std::size_t>(winograd::kTileElems) * out_c * ld);
  for (int b = 0; b < batch; ++b) {
    winograd::transform_input(
        input + static_cast<std::size_t>(b) * in_stride, geom, v, ld,
        static_cast<std::size_t>(b) * p_img);
  }
  // Bias + activation wait for the inverse transform: the GEMMs run
  // in the transformed domain, where neither distributes.
  for (int xi = 0; xi < winograd::kTileElems; ++xi) {
    gemm_packed(u_panels[static_cast<std::size_t>(xi)],
                v + static_cast<std::size_t>(xi) * in_c * ld,
                m + static_cast<std::size_t>(xi) * out_c * ld, ld);
  }
  const EpiAct epi_act = to_epilogue_act(act);
  for (int b = 0; b < batch; ++b) {
    winograd::transform_output(
        m, ld, static_cast<std::size_t>(b) * p_img, geom,
        static_cast<int>(out_c), bias, epi_act, mode,
        output + static_cast<std::size_t>(b) * out_stride);
  }
}

void dwconv2d(const float* input, const ConvGeometry& geom,
              const float* weight, const float* bias, Act act,
              float* output) {
  const int oh = geom.out_h();
  const int ow = geom.out_w();
  const std::size_t in_plane = static_cast<std::size_t>(geom.in_h) * geom.in_w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  for (int c = 0; c < geom.in_c; ++c) {
    const float* src = input + static_cast<std::size_t>(c) * in_plane;
    const float* w = weight + static_cast<std::size_t>(c) * geom.kernel_h *
                                  geom.kernel_w;
    float* dst = output + static_cast<std::size_t>(c) * out_plane;
    const float b = bias != nullptr ? bias[c] : 0.0f;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float acc = b;
        for (int ky = 0; ky < geom.kernel_h; ++ky) {
          const int sy = y * geom.stride - geom.pad + ky;
          if (sy < 0 || sy >= geom.in_h) continue;
          for (int kx = 0; kx < geom.kernel_w; ++kx) {
            const int sx = x * geom.stride - geom.pad + kx;
            if (sx < 0 || sx >= geom.in_w) continue;
            acc += w[ky * geom.kernel_w + kx] *
                   src[static_cast<std::size_t>(sy) * geom.in_w + sx];
          }
        }
        dst[static_cast<std::size_t>(y) * ow + x] = activate_scalar(act, acc);
      }
    }
  }
}

void deconv2d_2x(const float* input, int in_c, int in_h, int in_w, int out_c,
                 const float* weight, const float* bias, Act act,
                 float* output) {
  const int out_h = in_h * 2;
  const int out_w = in_w * 2;
  const std::size_t out_plane = static_cast<std::size_t>(out_h) * out_w;
  const std::size_t total = static_cast<std::size_t>(out_c) * out_plane;
  // Initialise with bias, then scatter-add input contributions.
  for (int oc = 0; oc < out_c; ++oc) {
    const float b = bias != nullptr ? bias[oc] : 0.0f;
    std::fill_n(output + static_cast<std::size_t>(oc) * out_plane, out_plane, b);
  }
  constexpr int kK = 4, kStride = 2, kPad = 1;
  const std::size_t in_plane = static_cast<std::size_t>(in_h) * in_w;
  for (int ic = 0; ic < in_c; ++ic) {
    const float* src = input + static_cast<std::size_t>(ic) * in_plane;
    for (int oc = 0; oc < out_c; ++oc) {
      const float* w =
          weight + ((static_cast<std::size_t>(ic) * out_c) + oc) * kK * kK;
      float* dst = output + static_cast<std::size_t>(oc) * out_plane;
      for (int y = 0; y < in_h; ++y) {
        for (int x = 0; x < in_w; ++x) {
          const float v = src[static_cast<std::size_t>(y) * in_w + x];
          if (v == 0.0f) continue;
          for (int ky = 0; ky < kK; ++ky) {
            const int oy = y * kStride - kPad + ky;
            if (oy < 0 || oy >= out_h) continue;
            for (int kx = 0; kx < kK; ++kx) {
              const int ox = x * kStride - kPad + kx;
              if (ox < 0 || ox >= out_w) continue;
              dst[static_cast<std::size_t>(oy) * out_w + ox] +=
                  v * w[ky * kK + kx];
            }
          }
        }
      }
    }
  }
  apply_activation(act, output, total);
}

void maxpool2d(const float* input, const ConvGeometry& geom, float* output) {
  const int oh = geom.out_h();
  const int ow = geom.out_w();
  const std::size_t in_plane = static_cast<std::size_t>(geom.in_h) * geom.in_w;
  const std::size_t out_plane = static_cast<std::size_t>(oh) * ow;
  for (int c = 0; c < geom.in_c; ++c) {
    const float* src = input + static_cast<std::size_t>(c) * in_plane;
    float* dst = output + static_cast<std::size_t>(c) * out_plane;
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        float best = std::numeric_limits<float>::lowest();
        for (int ky = 0; ky < geom.kernel_h; ++ky) {
          const int sy = y * geom.stride - geom.pad + ky;
          if (sy < 0 || sy >= geom.in_h) continue;
          for (int kx = 0; kx < geom.kernel_w; ++kx) {
            const int sx = x * geom.stride - geom.pad + kx;
            if (sx < 0 || sx >= geom.in_w) continue;
            best = std::max(best,
                            src[static_cast<std::size_t>(sy) * geom.in_w + sx]);
          }
        }
        dst[static_cast<std::size_t>(y) * ow + x] = best;
      }
    }
  }
}

void upsample2x_nearest(const float* input, int c, int h, int w,
                        float* output) {
  const int oh = h * 2;
  const int ow = w * 2;
  for (int ch = 0; ch < c; ++ch) {
    const float* src = input + static_cast<std::size_t>(ch) * h * w;
    float* dst = output + static_cast<std::size_t>(ch) * oh * ow;
    for (int y = 0; y < oh; ++y) {
      const float* src_row = src + static_cast<std::size_t>(y / 2) * w;
      float* dst_row = dst + static_cast<std::size_t>(y) * ow;
      for (int x = 0; x < ow; ++x) dst_row[x] = src_row[x / 2];
    }
  }
}

void concat_channels(const std::vector<const float*>& srcs,
                     const std::vector<int>& channels, int h, int w,
                     float* output) {
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  float* dst = output;
  for (std::size_t i = 0; i < srcs.size(); ++i) {
    const std::size_t count = static_cast<std::size_t>(channels[i]) * plane;
    std::memcpy(dst, srcs[i], count * sizeof(float));
    dst += count;
  }
}

void add_elementwise(const float* a, const float* b, std::size_t n,
                     float* output) {
  for (std::size_t i = 0; i < n; ++i) output[i] = a[i] + b[i];
}

void slice_channels(const float* input, int c, int h, int w, int begin,
                    int end, float* output) {
  (void)c;
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  std::memcpy(output, input + static_cast<std::size_t>(begin) * plane,
              static_cast<std::size_t>(end - begin) * plane * sizeof(float));
}

void global_avg_pool(const float* input, int c, int h, int w, float* output) {
  const std::size_t plane = static_cast<std::size_t>(h) * w;
  for (int ch = 0; ch < c; ++ch) {
    const float* src = input + static_cast<std::size_t>(ch) * plane;
    double acc = 0.0;
    for (std::size_t i = 0; i < plane; ++i) acc += src[i];
    output[ch] = static_cast<float>(acc / static_cast<double>(plane));
  }
}

void linear(const float* input, std::size_t in_features, int out_features,
            const float* weight, const float* bias, Act act, float* output) {
  for (int o = 0; o < out_features; ++o) {
    const float* w = weight + static_cast<std::size_t>(o) * in_features;
    float acc = bias != nullptr ? bias[o] : 0.0f;
    for (std::size_t i = 0; i < in_features; ++i) acc += w[i] * input[i];
    output[o] = activate_scalar(act, acc);
  }
}

void linear(const float* input, const PackedA& weight, const float* bias,
            Act act, float* output) {
  gemm_packed(weight, input, output, /*n=*/1, /*accumulate=*/false,
              GemmEpilogue{bias, to_epilogue_act(act)});
}

void linear(const float* input, const PackedHalfA& weight, const float* bias,
            Act act, float* output) {
  gemm_packed_half(weight, input, output, /*n=*/1, /*accumulate=*/false,
                   GemmEpilogue{bias, to_epilogue_act(act)});
}

void linear(const float* input, const PackedSparseA& weight,
            const float* bias, Act act, float* output) {
  gemm_packed_sparse(weight, input, output, /*n=*/1, /*accumulate=*/false,
                     GemmEpilogue{bias, to_epilogue_act(act)});
}

}  // namespace ocb::nn
