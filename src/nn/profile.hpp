// Per-layer compute/memory profile of a Graph.
//
// The device simulator consumes these profiles: each layer contributes
// a compute term (FLOPs) and a memory-traffic term (activation + weight
// bytes) to the roofline latency model.
#pragma once

#include <string>
#include <vector>

#include "nn/graph.hpp"

namespace ocb::nn {

struct LayerProfile {
  std::string name;
  OpKind kind = OpKind::kInput;
  double flops = 0.0;        ///< multiply-accumulate FLOPs (2·MACs)
  std::size_t params = 0;    ///< learnable parameters
  std::size_t in_bytes = 0;  ///< activation bytes read
  std::size_t out_bytes = 0; ///< activation bytes written
  std::size_t weight_bytes = 0;
};

struct ModelProfile {
  std::string model_name;
  int input_h = 0, input_w = 0;
  std::vector<LayerProfile> layers;

  double total_flops() const noexcept;
  std::size_t total_params() const noexcept;
  std::size_t total_weight_bytes() const noexcept;
  std::size_t total_activation_bytes() const noexcept;
  /// Number of layers that launch device kernels (excludes kInput).
  std::size_t kernel_count() const noexcept;
};

/// Build the profile of a graph (batch size 1, FP32 activations).
ModelProfile profile_graph(const Graph& graph, const std::string& model_name);

}  // namespace ocb::nn
