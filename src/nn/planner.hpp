// Cost-model-driven kernel planner for convolution layers.
//
// For each conv layer (keyed by ConvPlanKey) the planner enumerates
// the applicable implementations, prices each with a roofline/
// micro-kernel cost model, and caches the winner in a PlanCache. The
// model splits every candidate into a compute term (GEMM FLOPs over a
// sustained-throughput estimate, derated for tile quantization — the
// AVX2 micro-kernel works in 6×16 tiles, so ragged edges waste lanes)
// and a bandwidth term (the lowering / transform / scatter traffic
// over an effective copy bandwidth), plus a fixed dispatch overhead
// per GEMM call. Default constants are calibrated against this repo's
// committed BENCH_kernels baseline; `from_roofline` builds a model
// from a devsim DeviceSpec's numbers instead so planning can be
// studied for simulated edge devices.
//
// The planner is deliberately a pure function: plan_conv(key, config)
// has no engine state, so tests can probe decisions directly and any
// engine, server or bench shares cached decisions through the global
// PlanCache. Engine::prepare() is the integration point.
#pragma once

#include "nn/conv_plan.hpp"

namespace ocb::nn {

/// Sustained-throughput estimates feeding the candidate cost model.
///
/// The last three fields price the compressed-storage candidates
/// (WeightStorage::kHalf/kSparse/kSparseHalf): a bytes-moved term over
/// `weight_gbps` models the per-pass streaming of the weight panels —
/// on GEMV-like shapes (linear layers, n of a few) that traffic, not
/// FLOPs, bounds the kernel, which is exactly where half storage wins —
/// and the compute scales derate effective throughput for the widening
/// / indirection the compressed kernels do per k-group. They default to
/// 0 (= disabled / use built-in derates), so cost models aggregate-
/// initialised with the original five fields price dense candidates
/// identically to before.
struct KernelCostModel {
  double gemm_gflops = 0.0;      ///< packed fp32 GEMM, large shapes
  double int8_gops = 0.0;        ///< u8×s8 quantized GEMM
  double mem_gbps = 0.0;         ///< streaming copy (lowering/scatter)
  double transform_gbps = 0.0;   ///< winograd tile-transform traffic
  double gemm_overhead_us = 0.0; ///< fixed cost per GEMM dispatch
  double weight_gbps = 0.0;      ///< weight-panel streaming; 0 disables
                                 ///< the bytes-moved term entirely
  double half_compute_scale = 0.0;   ///< fp16/bf16-storage GEMM throughput
                                     ///< vs dense (0 = default derate)
  double sparse_compute_scale = 0.0; ///< sparse GEMM throughput on the
                                     ///< surviving work vs dense
  /// Bandwidth the fused im2col-free candidates see for their panel
  /// traffic: stripes are sized to stay cache-resident
  /// (fused_panel_cols), so the column write + GEMM read hit L2 instead
  /// of DRAM. 0 falls back to a multiple of mem_gbps — cost models
  /// aggregate-initialised with the earlier fields keep pricing the
  /// fused candidates sensibly.
  double cache_gbps = 0.0;

  bool valid() const noexcept { return gemm_gflops > 0.0; }

  /// Constants for this machine class, calibrated against the
  /// committed BENCH_kernels baseline for the given SIMD path.
  static KernelCostModel defaults(simd::Level level) noexcept;

  /// Model derived from devsim-style roofline numbers (effective
  /// GFLOP/s, effective GB/s, per-kernel launch overhead in µs and the
  /// device's int8:fp32 throughput ratio).
  static KernelCostModel from_roofline(double eff_gflops, double eff_bw_gbps,
                                       double kernel_overhead_us,
                                       double int8_speedup) noexcept;
};

/// Planner knobs carried inside a PlanRequest.
struct PlannerConfig {
  bool enable_winograd = true;
  bool enable_direct = true;
  /// kInt8 precision only: let a layer fall back to fp32 when the
  /// model prices the quantized path slower (tiny layers, where the
  /// quantize/dequantize traffic dominates).
  bool enable_fp32_fallback = true;
  /// Enumerate the fused im2col-free candidates (kIm2colFused /
  /// kIm2colQuantFused): on-the-fly stripe packing that never
  /// materializes the column matrix (see gemm_packed_im2col).
  bool enable_fused = true;
  /// Consult and populate the plan cache. Plans computed under
  /// non-default candidate toggles are never inserted (a restricted
  /// enumeration must not shadow the full one for later callers).
  bool use_cache = true;
  /// Cache to use; nullptr means PlanCache::global().
  PlanCache* cache = nullptr;
  /// Cost model override; an invalid (default) model means
  /// KernelCostModel::defaults(key.level).
  KernelCostModel cost{};
};

/// Candidate applicability.
bool winograd_applicable(const ConvPlanKey& key) noexcept;
bool direct_applicable(const ConvPlanKey& key) noexcept;

/// Per-candidate latency estimates (milliseconds, whole batch). Public
/// so tests and bench_conv_planner can introspect the model.
double est_im2col_ms(const ConvPlanKey& key,
                     const KernelCostModel& model) noexcept;
double est_direct_ms(const ConvPlanKey& key,
                     const KernelCostModel& model) noexcept;
double est_winograd_ms(const ConvPlanKey& key,
                       const KernelCostModel& model) noexcept;
double est_int8_ms(const ConvPlanKey& key,
                   const KernelCostModel& model) noexcept;

/// Fused im2col-free candidates: the same GEMM compute term as the
/// materialized estimates, but the column matrix is replaced by
/// cache-resident stripe panels — the input gather still streams at
/// mem_gbps, the panel write + kernel read are priced at cache_gbps,
/// and the materialized path's full-size column write/read-back and
/// (for batch > 1) the channel-major scatter disappear.
double est_im2col_fused_ms(const ConvPlanKey& key,
                           const KernelCostModel& model) noexcept;
double est_int8_fused_ms(const ConvPlanKey& key,
                         const KernelCostModel& model) noexcept;

/// Storage-aware variants: the same im2col / direct candidates with the
/// GEMM priced for compressed weight panels. `density` is the surviving
/// weight fraction (ignored for kDense/kHalf); passing kDense with
/// density 1.0 reproduces est_im2col_ms / est_direct_ms exactly.
double est_im2col_storage_ms(const ConvPlanKey& key,
                             const KernelCostModel& model,
                             WeightStorage storage, double density) noexcept;
double est_direct_storage_ms(const ConvPlanKey& key,
                             const KernelCostModel& model,
                             WeightStorage storage, double density) noexcept;

/// Enumerate, cost and pick the cheapest applicable implementation for
/// `key`, consulting the cache first. Thread-safe.
ConvPlan plan_conv(const ConvPlanKey& key, const PlannerConfig& config = {});

}  // namespace ocb::nn
