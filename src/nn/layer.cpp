#include "nn/layer.hpp"

#include <cmath>

#include "tensor/gemm.hpp"

namespace ocb::nn {

const char* op_name(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kInput: return "input";
    case OpKind::kConv: return "conv";
    case OpKind::kDwConv: return "dwconv";
    case OpKind::kDeconv: return "deconv";
    case OpKind::kMaxPool: return "maxpool";
    case OpKind::kUpsample: return "upsample";
    case OpKind::kConcat: return "concat";
    case OpKind::kAdd: return "add";
    case OpKind::kSlice: return "slice";
    case OpKind::kGlobalAvgPool: return "gap";
    case OpKind::kLinear: return "linear";
  }
  return "?";
}

void apply_activation(Act act, float* data, std::size_t n) noexcept {
  switch (act) {
    case Act::kNone:
      return;
    case Act::kRelu:
      for (std::size_t i = 0; i < n; ++i)
        if (data[i] < 0.0f) data[i] = 0.0f;
      return;
    case Act::kLeakyRelu:
      for (std::size_t i = 0; i < n; ++i)
        if (data[i] < 0.0f) data[i] *= kLeakySlope;
      return;
    case Act::kSilu:
      for (std::size_t i = 0; i < n; ++i) {
        const float x = data[i];
        data[i] = x / (1.0f + std::exp(-x));
      }
      return;
    case Act::kSigmoid:
      for (std::size_t i = 0; i < n; ++i)
        data[i] = 1.0f / (1.0f + std::exp(-data[i]));
      return;
  }
}

}  // namespace ocb::nn
