#include "nn/engine.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace ocb::nn {

Engine::Engine(const Graph& graph, std::uint64_t seed) : graph_(graph) {
  const int n = graph_.node_count();
  OCB_CHECK_MSG(n > 0, "cannot build an engine over an empty graph");
  weights_.resize(static_cast<std::size_t>(n));
  biases_.resize(static_cast<std::size_t>(n));
  activations_.resize(static_cast<std::size_t>(n));
  packed_.resize(static_cast<std::size_t>(n));
  pack_dirty_.assign(static_cast<std::size_t>(n), 0);
  concat_srcs_.resize(static_cast<std::size_t>(n));
  concat_channels_.resize(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    if (graph_.node_params(i) == 0) continue;
    const FeatShape in0 = graph_.shape(nd.inputs[0]);
    Rng rng(hash_combine(seed, static_cast<std::uint64_t>(i)));

    switch (nd.kind) {
      case OpKind::kConv: {
        const int fan_in = in0.c * nd.kernel * nd.kernel;
        weights_[i] = Tensor({nd.out_c, in0.c, nd.kernel, nd.kernel});
        weights_[i].init_he(rng, fan_in);
        biases_[i] = Tensor({1, nd.out_c, 1, 1});
        break;
      }
      case OpKind::kDwConv: {
        weights_[i] = Tensor({in0.c, 1, nd.kernel, nd.kernel});
        weights_[i].init_he(rng, nd.kernel * nd.kernel);
        biases_[i] = Tensor({1, in0.c, 1, 1});
        break;
      }
      case OpKind::kDeconv: {
        weights_[i] = Tensor({in0.c, nd.out_c, 4, 4});
        weights_[i].init_he(rng, in0.c * 16);
        biases_[i] = Tensor({1, nd.out_c, 1, 1});
        break;
      }
      case OpKind::kLinear: {
        const auto in_features = in0.numel();
        weights_[i] = Tensor(
            {nd.out_c, static_cast<int>(in_features), 1, 1});
        weights_[i].init_he(rng, static_cast<int>(in_features));
        biases_[i] = Tensor({1, nd.out_c, 1, 1});
        break;
      }
      default:
        break;
    }
  }

  // Load-time plan: pre-size every activation (pointers stay stable for
  // the precomputed concat argument lists below), pack conv/linear
  // weight panels, and reserve the arena for the largest im2col
  // lowering any node needs.
  std::size_t max_scratch_floats = 0;
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    const FeatShape out = graph_.shape(i);
    activations_[static_cast<std::size_t>(i)] =
        Tensor({1, out.c, out.h, out.w});
    if (nd.kind == OpKind::kConv || nd.kind == OpKind::kLinear) repack(i);
    if (nd.kind == OpKind::kConv) {
      const FeatShape s = graph_.shape(nd.inputs[0]);
      const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel, nd.stride,
                              nd.pad};
      max_scratch_floats =
          std::max(max_scratch_floats, geom.col_rows() * geom.col_cols());
    }
  }
  scratch_.arena.reserve_bytes(max_scratch_floats * sizeof(float));
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    if (nd.kind != OpKind::kConcat) continue;
    for (int src : nd.inputs) {
      concat_srcs_[static_cast<std::size_t>(i)].push_back(
          activations_[static_cast<std::size_t>(src)].data());
      concat_channels_[static_cast<std::size_t>(i)].push_back(
          graph_.shape(src).c);
    }
  }
}

void Engine::repack(int node) {
  const std::size_t i = static_cast<std::size_t>(node);
  const Node& nd = graph_.node(node);
  const FeatShape in0 = graph_.shape(nd.inputs[0]);
  if (nd.kind == OpKind::kConv) {
    packed_[i].pack(weights_[i].data(), static_cast<std::size_t>(nd.out_c),
                    static_cast<std::size_t>(in0.c) * nd.kernel * nd.kernel);
  } else if (nd.kind == OpKind::kLinear) {
    packed_[i].pack(weights_[i].data(), static_cast<std::size_t>(nd.out_c),
                    in0.numel());
  }
  pack_dirty_[i] = 0;
}

std::vector<Tensor> Engine::run(const Tensor& input) {
  const FeatShape in_shape = graph_.input_shape();
  const Shape expected{1, in_shape.c, in_shape.h, in_shape.w};
  OCB_CHECK_MSG(input.shape() == expected,
                "engine input shape mismatch: got " + input.shape().str());

  const int n = graph_.node_count();
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    const FeatShape out = graph_.shape(i);
    Tensor& dst = activations_[static_cast<std::size_t>(i)];
    if (pack_dirty_[static_cast<std::size_t>(i)] != 0) repack(i);

    auto src = [&](std::size_t k) -> const Tensor& {
      return activations_[static_cast<std::size_t>(nd.inputs[k])];
    };

    switch (nd.kind) {
      case OpKind::kInput:
        // Same-shape copy: the pre-sized buffer is reused, keeping the
        // activation pointer (and concat lists) stable.
        std::copy_n(input.data(), input.numel(), dst.data());
        break;
      case OpKind::kConv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        conv2d(src(0).data(), geom, packed_[static_cast<std::size_t>(i)],
               biases_[i].data(), nd.act, dst.data(), scratch_);
        break;
      }
      case OpKind::kDwConv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        dwconv2d(src(0).data(), geom, weights_[i].data(), biases_[i].data(),
                 nd.act, dst.data());
        break;
      }
      case OpKind::kDeconv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        deconv2d_2x(src(0).data(), s.c, s.h, s.w, nd.out_c,
                    weights_[i].data(), biases_[i].data(), nd.act,
                    dst.data());
        break;
      }
      case OpKind::kMaxPool: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        maxpool2d(src(0).data(), geom, dst.data());
        break;
      }
      case OpKind::kUpsample: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        upsample2x_nearest(src(0).data(), s.c, s.h, s.w, dst.data());
        break;
      }
      case OpKind::kConcat:
        concat_channels(concat_srcs_[static_cast<std::size_t>(i)],
                        concat_channels_[static_cast<std::size_t>(i)], out.h,
                        out.w, dst.data());
        break;
      case OpKind::kAdd:
        add_elementwise(src(0).data(), src(1).data(), out.numel(),
                        dst.data());
        apply_activation(nd.act, dst.data(), out.numel());
        break;
      case OpKind::kSlice: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        slice_channels(src(0).data(), s.c, s.h, s.w, nd.slice_begin,
                       nd.slice_end, dst.data());
        break;
      }
      case OpKind::kGlobalAvgPool: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        global_avg_pool(src(0).data(), s.c, s.h, s.w, dst.data());
        break;
      }
      case OpKind::kLinear: {
        linear(src(0).data(), packed_[static_cast<std::size_t>(i)],
               biases_[i].data(), nd.act, dst.data());
        break;
      }
    }
  }

  has_run_ = true;
  std::vector<Tensor> outputs;
  outputs.reserve(graph_.outputs().size());
  for (int node : graph_.outputs())
    outputs.push_back(activations_[static_cast<std::size_t>(node)]);
  return outputs;
}

const Tensor& Engine::node_output(int node) const {
  OCB_CHECK(node >= 0 && node < graph_.node_count());
  OCB_CHECK_MSG(has_run_, "node_output before run()");
  return activations_[static_cast<std::size_t>(node)];
}

Tensor& Engine::weight(int node) {
  OCB_CHECK(node >= 0 && node < graph_.node_count());
  OCB_CHECK_MSG(!weights_[static_cast<std::size_t>(node)].empty(),
                "node has no weights");
  pack_dirty_[static_cast<std::size_t>(node)] = 1;
  return weights_[static_cast<std::size_t>(node)];
}

Tensor& Engine::bias(int node) {
  OCB_CHECK(node >= 0 && node < graph_.node_count());
  OCB_CHECK_MSG(!biases_[static_cast<std::size_t>(node)].empty(),
                "node has no bias");
  return biases_[static_cast<std::size_t>(node)];
}

}  // namespace ocb::nn
