#include "nn/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>

#include "core/error.hpp"
#include "tensor/winograd.hpp"

namespace ocb::nn {

namespace {

/// Process-wide plan-verification hook (see Engine::set_plan_verify_hook).
std::atomic<Engine::PlanVerifyHook> g_plan_verify_hook{nullptr};

/// Weights as the quantizer should see them: when pruning is active for
/// the layer, a masked copy staged in `scratch` (the int8 kernels stay
/// dense — the mask only zeroes weights before quantization, matching
/// what the sparse fp32 path computes).
const float* masked_for_quant(const float* w, std::size_t m, std::size_t k,
                              const SparsityConfig& sparsity,
                              std::vector<float>& scratch) {
  const std::size_t count = m * k;
  if (!sparsity.enabled() || layer_sparsity_pct(sparsity, count) == 0)
    return w;
  const std::vector<std::uint8_t> mask = magnitude_mask(w, m, k, sparsity);
  scratch.assign(w, w + count);
  apply_mask(scratch.data(), mask.data(), count);
  return scratch.data();
}

}  // namespace

std::string ExecutionPlan::to_text(const Graph& graph) const {
  std::string out = "execution plan: precision=";
  out += precision_name(precision);
  out += " max_batch=" + std::to_string(max_batch);
  if (sparse_nodes > 0 || fp16_nodes > 0) {
    out += " sparse=" + std::to_string(sparse_nodes);
    out += " fp16=" + std::to_string(fp16_nodes);
  }
  out += " (cache " + std::to_string(cache_hits) + " hit/" +
         std::to_string(cache_misses) + " miss)\n";
  if (residual_fused > 0 || concat_elided > 0 ||
      arena_peak_bytes_after != arena_peak_bytes_before) {
    out += "  fusion: residual=" + std::to_string(residual_fused) +
           " concat=" + std::to_string(concat_elided) + " arena " +
           std::to_string(arena_peak_bytes_before / 1024) + "KiB -> " +
           std::to_string(arena_peak_bytes_after / 1024) + "KiB\n";
  }
  for (int i = 0; i < graph.node_count(); ++i) {
    const Node& nd = graph.node(i);
    const ConvPlan& p = nodes[static_cast<std::size_t>(i)];
    // Linear nodes appear once the planner assigns them compressed
    // storage; they run the default dense GEMV otherwise.
    const bool linear_row = nd.kind == OpKind::kLinear &&
                            p.storage != WeightStorage::kDense;
    if (nd.kind != OpKind::kConv && !linear_row) continue;
    const FeatShape s = graph.shape(nd.inputs[0]);
    // Algo column, e.g. "winograd", "im2col/sparse", "direct/half".
    std::string algo = conv_algo_name(p.algo);
    if (p.storage != WeightStorage::kDense) {
      algo += '/';
      algo += weight_storage_name(p.storage);
    }
    char line[192];
    if (linear_row) {
      std::snprintf(line, sizeof(line),
                    "  %-16s %8zu->%-4d       %-18s est %.3f ms\n",
                    nd.name.empty() ? "linear" : nd.name.c_str(),
                    s.numel(), nd.out_c, algo.c_str(), p.est_ms);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-16s %3dx%-3d c%-3d->%-3d k%d s%d  %-18s est %.3f ms"
                    " (im2col %.3f ms)\n",
                    nd.name.empty() ? "conv" : nd.name.c_str(), s.h, s.w, s.c,
                    nd.out_c, nd.kernel, nd.stride, algo.c_str(), p.est_ms,
                    p.est_im2col_ms);
    }
    out += line;
  }
  return out;
}

Engine::Engine(const Graph& graph, std::uint64_t seed) : graph_(graph) {
  const int n = graph_.node_count();
  OCB_CHECK_MSG(n > 0, "cannot build an engine over an empty graph");
  weights_.resize(static_cast<std::size_t>(n));
  biases_.resize(static_cast<std::size_t>(n));
  activations_.resize(static_cast<std::size_t>(n));
  packed_.resize(static_cast<std::size_t>(n));
  pack_dirty_.assign(static_cast<std::size_t>(n), 0);
  sparse_packed_.resize(static_cast<std::size_t>(n));
  half_packed_.resize(static_cast<std::size_t>(n));
  wino_panels_.resize(static_cast<std::size_t>(n));
  pack_crc_.assign(static_cast<std::size_t>(n), 0);
  sparse_crc_.assign(static_cast<std::size_t>(n), 0);
  half_crc_.assign(static_cast<std::size_t>(n), 0);
  plan_.nodes.assign(static_cast<std::size_t>(n), ConvPlan{});
  plan_scratch_.assign(static_cast<std::size_t>(n), ConvPlan{});

  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    if (graph_.node_params(i) == 0) continue;
    const FeatShape in0 = graph_.shape(nd.inputs[0]);
    Rng rng(hash_combine(seed, static_cast<std::uint64_t>(i)));

    switch (nd.kind) {
      case OpKind::kConv: {
        const int fan_in = in0.c * nd.kernel * nd.kernel;
        weights_[i] = Tensor({nd.out_c, in0.c, nd.kernel, nd.kernel});
        weights_[i].init_he(rng, fan_in);
        biases_[i] = Tensor({1, nd.out_c, 1, 1});
        break;
      }
      case OpKind::kDwConv: {
        weights_[i] = Tensor({in0.c, 1, nd.kernel, nd.kernel});
        weights_[i].init_he(rng, nd.kernel * nd.kernel);
        biases_[i] = Tensor({1, in0.c, 1, 1});
        break;
      }
      case OpKind::kDeconv: {
        weights_[i] = Tensor({in0.c, nd.out_c, 4, 4});
        weights_[i].init_he(rng, in0.c * 16);
        biases_[i] = Tensor({1, nd.out_c, 1, 1});
        break;
      }
      case OpKind::kLinear: {
        const auto in_features = in0.numel();
        weights_[i] = Tensor(
            {nd.out_c, static_cast<int>(in_features), 1, 1});
        weights_[i].init_he(rng, static_cast<int>(in_features));
        biases_[i] = Tensor({1, nd.out_c, 1, 1});
        break;
      }
      default:
        break;
    }
  }

  // Load-time plan: pre-size every activation (pointers stay stable for
  // the precomputed concat argument lists below), pack conv/linear
  // weight panels, and reserve the arena for the largest im2col
  // lowering any node needs.
  std::size_t max_scratch_floats = 0;
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    const FeatShape out = graph_.shape(i);
    activations_[static_cast<std::size_t>(i)] =
        Tensor({1, out.c, out.h, out.w});
    if (nd.kind == OpKind::kConv || nd.kind == OpKind::kLinear) {
      repack(i);
      integrity_nodes_.push_back(i);
    }
    if (nd.kind == OpKind::kConv) {
      const FeatShape s = graph_.shape(nd.inputs[0]);
      const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel, nd.stride,
                              nd.pad};
      max_scratch_floats =
          std::max(max_scratch_floats, geom.col_rows() * geom.col_cols());
    }
  }
  scratch_.arena.reserve_bytes(max_scratch_floats * sizeof(float));
  resize_output_slots();

  // Baseline fusion plan (everything off: one buffer per node) and the
  // identity activation layout it induces.
  fusion_ = plan_fusion(graph_, plan_.nodes, FusionConfig{}, 1);
  plan_.arena_peak_bytes_before = fusion_.naive_floats * sizeof(float);
  plan_.arena_peak_bytes_after = plan_.arena_peak_bytes_before;
  rebuild_act_layout();

  // Baseline plan: fp32, batch 1, im2col everywhere — bit-compatible
  // with the pre-planner engine. The cost-model planner only engages
  // through prepare().
  for (int i = 0; i < n; ++i)
    if (graph_.node(i).kind == OpKind::kConv) ++plan_.conv_nodes;
  plan_.im2col_nodes = plan_.conv_nodes;
}

void Engine::resize_output_slots() {
  const std::vector<int>& outs = graph_.outputs();
  outputs_.clear();
  outputs_.reserve(outs.size());
  for (int node : outs) {
    const FeatShape s = graph_.shape(node);
    outputs_.push_back(Tensor({1, s.c, s.h, s.w}));
  }
  batch_outputs_.assign(static_cast<std::size_t>(max_batch_), outputs_);
}

void Engine::materialize_outputs(int image, std::vector<Tensor>& dst) const {
  const std::vector<int>& outs = graph_.outputs();
  for (std::size_t j = 0; j < outs.size(); ++j) {
    const int node = outs[j];
    const std::size_t ni = static_cast<std::size_t>(node);
    const float* src = act_base_[ni] +
                       static_cast<std::size_t>(image) * act_stride_[ni];
    std::copy_n(src, graph_.shape(node).numel(), dst[j].data());
  }
}

void Engine::rebuild_act_layout() {
  const std::size_t n = static_cast<std::size_t>(graph_.node_count());
  act_base_.resize(n);
  act_stride_.resize(n);
  if (fusion_.planned) act_arena_.resize(fusion_.arena_floats);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t off = 0;
    const int root = fusion_.root_of(static_cast<int>(i), &off);
    const std::size_t ri = static_cast<std::size_t>(root);
    float* base = fusion_.planned ? act_arena_.data() + fusion_.offsets[ri]
                                  : activations_[ri].data();
    act_base_[i] = base + off;
    act_stride_[i] = graph_.shape(root).numel();
  }
}

const ExecutionPlan& Engine::prepare(const PlanRequest& request) {
  OCB_CHECK_MSG(request.max_batch >= 1, "prepare needs a positive max_batch");
  const int n = graph_.node_count();
  // Config-only: the verification cadence never keys the plan, so
  // adopting it up front keeps an otherwise-unchanged re-prepare on the
  // heap-free early-return path below.
  integrity_ = request.integrity;
  const bool new_calib = request.calibration != nullptr;
  if (new_calib) calib_ = *request.calibration;
  if (request.precision == Precision::kInt8) {
    OCB_CHECK_MSG(calib_.frames > 0 &&
                      calib_.ranges.size() == static_cast<std::size_t>(n),
                  "INT8 requires a calibration (run calibrate() first)");
  }

  // Plan every conv against the shape-keyed cache. Decisions land in
  // pre-sized staging first so an unchanged re-prepare — the warmed
  // serving path — allocates nothing.
  const simd::Level level = simd::active();
  PlanCache& cache = request.planner.cache != nullptr
                         ? *request.planner.cache
                         : PlanCache::global();
  const PlanCache::Stats before = cache.stats();
  // Pruning keys the plans per layer; under kInt8 the masks only gate
  // quantization (the quantized kernels stay dense), so the sparse
  // candidates are enumerated for float precisions only.
  const bool prune = request.sparsity.enabled() &&
                     request.precision != Precision::kInt8;
  // Linear nodes run the dense packed GEMV unless compressed storage is
  // in play; then they are planned through a pseudo 1×1 conv key (the
  // GEMV is exactly that GEMM shape), which keeps the classic plans —
  // and the cache traffic tests count on — untouched.
  const bool plan_linear = prune || request.precision == Precision::kFp16;
  bool algos_changed = false;
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    const std::size_t ui = static_cast<std::size_t>(i);
    ConvPlan p{};
    if (nd.kind == OpKind::kConv) {
      const FeatShape s = graph_.shape(nd.inputs[0]);
      ConvPlanKey key;
      key.in_c = s.c;
      key.in_h = s.h;
      key.in_w = s.w;
      key.kernel = nd.kernel;
      key.stride = nd.stride;
      key.pad = nd.pad;
      key.out_c = nd.out_c;
      key.batch = request.max_batch;
      key.precision = request.precision;
      key.level = level;
      if (prune)
        key.sparsity_pct =
            layer_sparsity_pct(request.sparsity, weights_[ui].numel());
      p = plan_conv(key, request.planner);
    } else if (nd.kind == OpKind::kLinear && plan_linear) {
      const FeatShape s = graph_.shape(nd.inputs[0]);
      ConvPlanKey key;
      key.in_c = static_cast<int>(s.numel());
      key.in_h = 1;
      key.in_w = 1;
      key.out_c = nd.out_c;
      key.precision = request.precision;
      key.level = level;
      if (prune)
        key.sparsity_pct =
            layer_sparsity_pct(request.sparsity, weights_[ui].numel());
      p = plan_conv(key, request.planner);
      // Only the storage decision applies — linear always runs the
      // packed GEMV, whatever algo the 1×1 enumeration preferred.
      p.algo = ConvAlgo::kIm2colGemm;
    }
    plan_scratch_[ui] = p;
    // An active plan may carry a fusion-requested upgrade (materialized
    // im2col re-planned as kIm2colFused so a residual could fold);
    // compare against the planner's raw pick or every re-prepare would
    // look changed and take the allocating rebuild path.
    ConvAlgo active = plan_.nodes[ui].algo;
    if (fusion_.nodes[ui].upgrade_fused && active == ConvAlgo::kIm2colFused)
      active = ConvAlgo::kIm2colGemm;
    if (p.algo != active || p.storage != plan_.nodes[ui].storage)
      algos_changed = true;
  }
  const PlanCache::Stats after = cache.stats();
  plan_.cache_hits = after.hits - before.hits;
  plan_.cache_misses = after.misses - before.misses;

  const bool grow = request.max_batch > max_batch_;
  const bool precision_change = request.precision != precision_;
  // Fusion is a float-path feature: the quantized engine keeps
  // per-node u8 buffers, so kInt8 forces the all-off config.
  FusionConfig fusion_cfg = request.fusion;
  if (request.precision == Precision::kInt8) fusion_cfg = FusionConfig{};
  const bool fusion_changed = !(fusion_cfg == fusion_cfg_);
  // A pruning-config change can leave every plan identical (e.g. a
  // granularity switch at the same budget) yet still change the masks;
  // a format change re-encodes the half panels. Both force the rebuild
  // path below.
  const bool sparsity_changed = !(request.sparsity == sparsity_);
  const bool format_changed = request.half_format != half_format_;
  if (!grow && !precision_change && !algos_changed && !new_calib &&
      !sparsity_changed && !format_changed && !fusion_changed)
    return plan_;  // active plan already satisfies the request

  // Same-length element-wise copy — no reallocation.
  for (std::size_t i = 0; i < plan_.nodes.size(); ++i)
    plan_.nodes[i] = plan_scratch_[i];
  if (grow) grow_batch_plan(request.max_batch);

  // Graph fusion + activation placement over the settled plans, and
  // the per-node base/stride views that execute it.
  fusion_ = plan_fusion(graph_, plan_.nodes, fusion_cfg, max_batch_);
  // A residual fold into a conv the planner left on materialized
  // im2col needs the fused kernel's epilogue: apply the re-plan the
  // fusion pass requested (NodeFusion::upgrade_fused) before sizing
  // scratch, so the stripe budget below sees the node.
  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (fusion_.nodes[ui].upgrade_fused)
      plan_.nodes[ui].algo = ConvAlgo::kIm2colFused;
  }
  fusion_cfg_ = fusion_cfg;
  rebuild_act_layout();
  plan_.residual_fused = fusion_.residual_fused;
  plan_.concat_elided = fusion_.concat_elided;
  plan_.arena_peak_bytes_before = fusion_.naive_floats * sizeof(float);
  plan_.arena_peak_bytes_after = fusion_.arena_floats * sizeof(float);

  // Invalidate compressed panels the new configuration re-derives, then
  // (lazily) build whatever the plan's storage choices need. Nodes the
  // plan keeps dense keep their empty slots.
  if (sparsity_changed)
    for (PackedSparseA& sp : sparse_packed_) sp = PackedSparseA{};
  if (format_changed) {
    for (PackedHalfA& hp : half_packed_) hp = PackedHalfA{};
    for (PackedSparseA& sp : sparse_packed_)
      if (sp.half()) sp = PackedSparseA{};
  }
  sparsity_ = request.sparsity;
  half_format_ = request.half_format;
  for (int i = 0; i < n; ++i) {
    const OpKind kind = graph_.node(i).kind;
    if (kind == OpKind::kConv || kind == OpKind::kLinear) pack_storage(i);
  }

  // Winograd nodes need their transformed weight panels and one arena
  // block for the V + M tile buffers of the hungriest layer.
  std::size_t wino_need = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (plan_.nodes[ui].algo != ConvAlgo::kWinograd) continue;
    if (wino_panels_[ui].empty()) pack_winograd(i);
    const Node& nd = graph_.node(i);
    const FeatShape s = graph_.shape(nd.inputs[0]);
    const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel, nd.stride,
                            nd.pad};
    wino_need = std::max(
        wino_need,
        winograd::scratch_floats(geom, nd.out_c, max_batch_) * sizeof(float));
  }
  if (wino_need != 0) {
    wino_need += 2 * Arena::kAlign;  // per-alloc alignment rounding
    if (wino_need > wino_scratch_bytes_) {
      scratch_.arena.reserve_bytes(scratch_.arena.capacity_bytes() +
                                   wino_need);
      wino_scratch_bytes_ = wino_need;
    }
  }

  // Fused-stripe nodes bump-allocate their panel buffers from the
  // arena per call; on tiny graphs that can exceed the constructor's
  // im2col reserve, so budget the hungriest fused layer explicitly.
  std::size_t fused_need = 0;
  for (int i = 0; i < n; ++i) {
    const std::size_t ui = static_cast<std::size_t>(i);
    if (plan_.nodes[ui].algo != ConvAlgo::kIm2colFused) continue;
    const Node& nd = graph_.node(i);
    const FeatShape s = graph_.shape(nd.inputs[0]);
    const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel, nd.stride,
                            nd.pad};
    fused_need = std::max(fused_need,
                          fused_conv_scratch_floats(geom) * sizeof(float));
  }
  if (fused_need != 0) {
    fused_need += 2 * Arena::kAlign;
    if (fused_need > fused_scratch_bytes_) {
      scratch_.arena.reserve_bytes(scratch_.arena.capacity_bytes() +
                                   fused_need);
      fused_scratch_bytes_ = fused_need;
    }
  }

  if (request.precision == Precision::kInt8) {
    build_int8_plan();
  } else if (precision_ == Precision::kInt8) {
    // Leaving INT8: drop u8 residency so a later fp32 run can never
    // see stale dequantized activations (the fp32-after-int8 class).
    std::fill(u8_valid_.begin(), u8_valid_.end(), 0);
    std::fill(float_stale_.begin(), float_stale_.end(), 0);
  }
  precision_ = request.precision;

  plan_.precision = precision_;
  plan_.max_batch = max_batch_;
  plan_.conv_nodes = 0;
  plan_.winograd_nodes = 0;
  plan_.direct_nodes = 0;
  plan_.im2col_nodes = 0;
  plan_.quant_nodes = 0;
  plan_.sparse_nodes = 0;
  plan_.fp16_nodes = 0;
  plan_.fused_nodes = 0;
  for (int i = 0; i < n; ++i) {
    const OpKind kind = graph_.node(i).kind;
    const ConvPlan& p = plan_.nodes[static_cast<std::size_t>(i)];
    if (kind == OpKind::kConv || kind == OpKind::kLinear) {
      if (p.storage == WeightStorage::kSparse ||
          p.storage == WeightStorage::kSparseHalf)
        ++plan_.sparse_nodes;
      if (p.storage == WeightStorage::kHalf ||
          p.storage == WeightStorage::kSparseHalf)
        ++plan_.fp16_nodes;
    }
    if (kind != OpKind::kConv) continue;
    ++plan_.conv_nodes;
    switch (p.algo) {
      case ConvAlgo::kWinograd: ++plan_.winograd_nodes; break;
      case ConvAlgo::kDirectGemm: ++plan_.direct_nodes; break;
      case ConvAlgo::kIm2colQuant: ++plan_.quant_nodes; break;
      case ConvAlgo::kIm2colGemm: ++plan_.im2col_nodes; break;
      case ConvAlgo::kIm2colFused: ++plan_.fused_nodes; break;
      case ConvAlgo::kIm2colQuantFused:
        ++plan_.quant_nodes;
        ++plan_.fused_nodes;
        break;
    }
  }

  // Debug-build soundness gate (DESIGN.md §15): hand the fully
  // assembled plan to the static verifier before anyone can run it.
  // The early-return path above never reaches here — it returns a plan
  // a previous rebuild already gated.
#if defined(OCB_PLAN_VERIFY)
  if (const PlanVerifyHook hook = plan_verify_hook()) hook(*this);
#endif
  return plan_;
}

void Engine::set_plan_verify_hook(PlanVerifyHook hook) noexcept {
  g_plan_verify_hook.store(hook, std::memory_order_release);
}

Engine::PlanVerifyHook Engine::plan_verify_hook() noexcept {
  return g_plan_verify_hook.load(std::memory_order_acquire);
}

Engine::PanelState Engine::panel_state(int node) const {
  const std::size_t i = static_cast<std::size_t>(node);
  OCB_CHECK_MSG(i < packed_.size(), "panel_state: node out of range");
  PanelState st;
  st.dense = !packed_[i].empty();
  st.sparse = !sparse_packed_[i].empty();
  st.sparse_half = st.sparse && sparse_packed_[i].half();
  st.half = !half_packed_[i].empty();
  st.winograd = !wino_panels_[i].empty();
  st.dense_crc = pack_crc_[i];
  st.sparse_crc = sparse_crc_[i];
  st.half_crc = half_crc_[i];
  return st;
}

Engine::QuantState Engine::quant_state(int node) const {
  const std::size_t i = static_cast<std::size_t>(node);
  OCB_CHECK_MSG(i < static_cast<std::size_t>(graph_.node_count()),
                "quant_state: node out of range");
  QuantState st;
  if (i < qlayers_.size() && qlayers_[i].valid()) {
    st.quantized = true;
    st.emit_u8 = qlayers_[i].emit_u8;
  }
  return st;
}

Engine::ActLayoutView Engine::act_layout(int node) const {
  const std::size_t i = static_cast<std::size_t>(node);
  OCB_CHECK_MSG(i < act_base_.size(), "act_layout: node out of range");
  ActLayoutView v;
  v.base = act_base_[i];
  v.stride_floats = act_stride_[i];
  if (fusion_.planned) {
    v.backing = act_arena_.data();
    v.backing_floats = act_arena_.size();
  } else {
    const int root = fusion_.root_of(node, nullptr);
    const Tensor& t = activations_[static_cast<std::size_t>(root)];
    v.backing = t.data();
    v.backing_floats = t.numel();
  }
  return v;
}

void Engine::grow_batch_plan(int max_batch) {
  OCB_CHECK_MSG(max_batch >= 1, "batch plan needs a positive batch");
  if (max_batch <= max_batch_) return;
  max_batch_ = max_batch;
  const int n = graph_.node_count();
  for (int i = 0; i < n; ++i) {
    const FeatShape out = graph_.shape(i);
    activations_[static_cast<std::size_t>(i)] =
        Tensor({max_batch, out.c, out.h, out.w});
  }
  has_run_ = false;
  // Re-sizing moved the activation storage; prepare() rebuilds the
  // per-node base pointers right after this. run_batch needs one
  // output snapshot row per image.
  resize_output_slots();

  // One extra arena block holding both buffers conv2d_batched bump-
  // allocates (the widened column matrix and the channel-major staging
  // result) for the hungriest conv in the graph, so batched runs never
  // grow the arena.
  std::size_t need = 0;
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    if (nd.kind != OpKind::kConv) continue;
    const FeatShape s = graph_.shape(nd.inputs[0]);
    const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel, nd.stride,
                            nd.pad};
    const std::size_t n_tot =
        geom.col_cols() * static_cast<std::size_t>(max_batch);
    need = std::max(need,
                    (geom.col_rows() + static_cast<std::size_t>(nd.out_c)) *
                        n_tot * sizeof(float));
  }
  need += 2 * Arena::kAlign;  // per-alloc alignment rounding
  if (need > batch_scratch_bytes_) {
    scratch_.arena.reserve_bytes(scratch_.arena.capacity_bytes() + need);
    batch_scratch_bytes_ = need;
  }
}

void Engine::repack(int node) {
  const std::size_t i = static_cast<std::size_t>(node);
  const Node& nd = graph_.node(node);
  const FeatShape in0 = graph_.shape(nd.inputs[0]);
  if (nd.kind == OpKind::kConv) {
    packed_[i].pack(weights_[i].data(), static_cast<std::size_t>(nd.out_c),
                    static_cast<std::size_t>(in0.c) * nd.kernel * nd.kernel);
  } else if (nd.kind == OpKind::kLinear) {
    packed_[i].pack(weights_[i].data(), static_cast<std::size_t>(nd.out_c),
                    in0.numel());
  }
  // Mutated weights invalidate the int8 panels too; requantize against
  // the existing calibration (activation ranges are weight-independent).
  if (i < qlayers_.size() && qlayers_[i].valid()) {
    const TensorQuant in_q = qlayers_[i].in_q;
    const TensorQuant out_q = qlayers_[i].out_q;
    const EpiAct act = qlayers_[i].act;
    const bool emit = qlayers_[i].emit_u8;
    const float* wq =
        masked_for_quant(weights_[i].data(), packed_[i].rows(),
                         packed_[i].cols(), sparsity_, masked_scratch_);
    qlayers_[i] = quantize_layer(wq, packed_[i].rows(), packed_[i].cols(),
                                 in_q, out_q, act);
    qlayers_[i].emit_u8 = emit;
  }
  // Winograd-planned nodes carry a transformed copy of the weights;
  // refresh it alongside the straight panels.
  if (nd.kind == OpKind::kConv && !wino_panels_[i].empty())
    pack_winograd(node);
  // Compressed panels re-derive from the mutated weights too (masks are
  // magnitude-based, so they may move).
  if (!half_packed_[i].empty())
    half_packed_[i].pack(weights_[i].data(), packed_[i].rows(),
                         packed_[i].cols(), half_format_);
  if (!sparse_packed_[i].empty()) {
    const bool want_half = sparse_packed_[i].half();
    const std::vector<std::uint8_t> mask = magnitude_mask(
        weights_[i].data(), packed_[i].rows(), packed_[i].cols(), sparsity_);
    if (want_half) {
      sparse_packed_[i].pack(weights_[i].data(), packed_[i].rows(),
                             packed_[i].cols(), mask.data(), half_format_);
    } else {
      sparse_packed_[i].pack(weights_[i].data(), packed_[i].rows(),
                             packed_[i].cols(), mask.data());
    }
  }
  pack_dirty_[i] = 0;
  record_checksums(i);
}

void Engine::pack_storage(int node) {
  const std::size_t i = static_cast<std::size_t>(node);
  const WeightStorage st = plan_.nodes[i].storage;
  if (st == WeightStorage::kDense) return;
  const std::size_t m = packed_[i].rows();
  const std::size_t k = packed_[i].cols();
  const float* w = weights_[i].data();
  if (st == WeightStorage::kHalf) {
    if (half_packed_[i].empty()) {
      half_packed_[i].pack(w, m, k, half_format_);
      record_checksums(i);
    }
    return;
  }
  const bool want_half = st == WeightStorage::kSparseHalf;
  if (!sparse_packed_[i].empty() && sparse_packed_[i].half() == want_half)
    return;  // current panels match the plan (weights repack via repack())
  const std::vector<std::uint8_t> mask = magnitude_mask(w, m, k, sparsity_);
  if (want_half) {
    sparse_packed_[i].pack(w, m, k, mask.data(), half_format_);
  } else {
    sparse_packed_[i].pack(w, m, k, mask.data());
  }
  record_checksums(i);
}

void Engine::pack_winograd(int node) {
  const std::size_t i = static_cast<std::size_t>(node);
  const Node& nd = graph_.node(node);
  OCB_CHECK_MSG(nd.kind == OpKind::kConv && nd.kernel == 3 && nd.stride == 1,
                "winograd panels need a 3x3 stride-1 conv node");
  const FeatShape in0 = graph_.shape(nd.inputs[0]);
  winograd::pack_weights(weights_[i].data(), nd.out_c, in0.c,
                         wino_panels_[i]);
}

// ---------------------------------------------------------------------------
// Weight integrity (DESIGN.md §14)
// ---------------------------------------------------------------------------

void Engine::record_checksums(std::size_t i) {
  pack_crc_[i] = packed_[i].empty() ? 0 : packed_[i].checksum();
  sparse_crc_[i] = sparse_packed_[i].empty() ? 0 : sparse_packed_[i].checksum();
  half_crc_[i] = half_packed_[i].empty() ? 0 : half_packed_[i].checksum();
}

bool Engine::verify_node(int node, bool recover) {
  const std::size_t i = static_cast<std::size_t>(node);
  ++integrity_report_.nodes_checked;
  const bool dense_ok =
      packed_[i].empty() || packed_[i].checksum() == pack_crc_[i];
  const bool sparse_ok = sparse_packed_[i].empty() ||
                         sparse_packed_[i].checksum() == sparse_crc_[i];
  const bool half_ok =
      half_packed_[i].empty() || half_packed_[i].checksum() == half_crc_[i];
  if (dense_ok && sparse_ok && half_ok) return true;
  ++integrity_report_.mismatches;
  if (recover) {
    // Re-pack every live format of the node from the master fp32
    // weights; repack() re-records the checksums.
    repack(node);
    ++integrity_report_.repacks;
  }
  return false;
}

int Engine::verify_weights(bool recover) {
  int failed = 0;
  for (int node : integrity_nodes_)
    if (!verify_node(node, recover)) ++failed;
  return failed;
}

void Engine::maybe_verify_tick() {
  if (integrity_.verify_every <= 0 || integrity_nodes_.empty()) return;
  if (++integrity_tick_ < integrity_.verify_every) return;
  integrity_tick_ = 0;
  verify_node(integrity_nodes_[integrity_cursor_], integrity_.recover);
  integrity_cursor_ = (integrity_cursor_ + 1) % integrity_nodes_.size();
}

PackedA& Engine::packed_panels(int node) {
  const std::size_t i = static_cast<std::size_t>(node);
  OCB_CHECK_MSG(i < packed_.size() && !packed_[i].empty(),
                "packed_panels: node carries no packed weight panels");
  return packed_[i];
}

std::uint32_t Engine::recorded_checksum(int node) const {
  return pack_crc_[static_cast<std::size_t>(node)];
}

QuantCalibration Engine::calibrate(const std::vector<Tensor>& frames) {
  OCB_CHECK_MSG(precision_ == Precision::kFp32,
                "calibrate() requires FP32 precision");
  OCB_CHECK_MSG(!fusion_cfg_.any(),
                "calibrate() requires an unfused plan (fused/placed nodes "
                "hide per-node float outputs); prepare() without a "
                "FusionConfig first");
  OCB_CHECK_MSG(!frames.empty(), "calibration needs at least one frame");
  const int n = graph_.node_count();
  QuantCalibration calib;
  calib.ranges.resize(static_cast<std::size_t>(n));
  for (const Tensor& frame : frames) {
    run(frame);
    for (int i = 0; i < n; ++i) {
      // Only the front image is live after a batch-1 run(); observing
      // the whole {max_batch, ...} buffer would fold in stale values.
      const Tensor& out = activations_[static_cast<std::size_t>(i)];
      calib.ranges[static_cast<std::size_t>(i)].observe(
          out.data(), graph_.shape(i).numel());
    }
  }
  calib.frames = static_cast<int>(frames.size());
  calib_ = calib;
  return calib;
}

void Engine::build_int8_plan() {
  const std::size_t n = static_cast<std::size_t>(graph_.node_count());
  qlayers_.assign(n, {});
  node_quant_.assign(n, {});
  u8_acts_.assign(n, {});
  u8_valid_.assign(n, 0);
  float_stale_.assign(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    const TensorRange& r = calib_.ranges[i];
    if (r.valid()) node_quant_[i] = quant_from_range(r.mn, r.mx);
  }

  // Consumer map: a conv keeps its output in u8 when every consumer
  // reads it through the INT8 path (and it isn't a graph output whose
  // caller expects float).
  std::vector<std::vector<int>> consumers(n);
  for (std::size_t j = 0; j < n; ++j)
    for (int s : graph_.node(static_cast<int>(j)).inputs)
      consumers[static_cast<std::size_t>(s)].push_back(static_cast<int>(j));
  // A conv is quantized only when the planner kept kIm2colQuant for it
  // (the cost model may keep a tiny layer in fp32); linear nodes are
  // always quantized. Consumers of a fallback node read float, so it
  // must not be counted as an INT8 reader when deciding u8 residency.
  auto quantizable = [&](int i) {
    const OpKind kind = graph_.node(i).kind;
    if (kind == OpKind::kLinear) return true;
    const ConvAlgo algo = plan_.nodes[static_cast<std::size_t>(i)].algo;
    return kind == OpKind::kConv && (algo == ConvAlgo::kIm2colQuant ||
                                     algo == ConvAlgo::kIm2colQuantFused);
  };
  const auto& outs = graph_.outputs();

  std::size_t max_quad_bytes = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Node& nd = graph_.node(static_cast<int>(i));
    if (!quantizable(static_cast<int>(i))) continue;
    const int src = nd.inputs[0];
    const FeatShape in0 = graph_.shape(src);
    std::size_t k;
    if (nd.kind == OpKind::kConv) {
      k = static_cast<std::size_t>(in0.c) * nd.kernel * nd.kernel;
      const ConvGeometry geom{in0.c, in0.h, in0.w, nd.kernel, nd.kernel,
                              nd.stride, nd.pad};
      // Fused nodes never materialize the quad buffer — they only need
      // their (much smaller) stripe panels, which can still exceed a
      // tiny layer's quad buffer.
      const bool fused = plan_.nodes[i].algo == ConvAlgo::kIm2colQuantFused;
      max_quad_bytes = std::max(
          max_quad_bytes,
          fused ? fused_qconv_scratch_bytes(geom)
                : quad_buffer_bytes(geom.col_rows(), geom.col_cols()));
    } else {
      k = in0.numel();
      max_quad_bytes = std::max(max_quad_bytes, quad_buffer_bytes(k, 1));
    }
    const float* wq =
        masked_for_quant(weights_[i].data(),
                         static_cast<std::size_t>(nd.out_c), k, sparsity_,
                         masked_scratch_);
    qlayers_[i] =
        quantize_layer(wq, static_cast<std::size_t>(nd.out_c), k,
                       node_quant_[static_cast<std::size_t>(src)],
                       node_quant_[i], to_epilogue_act(nd.act));
    bool emit = nd.kind == OpKind::kConv &&
                std::find(outs.begin(), outs.end(), static_cast<int>(i)) ==
                    outs.end() &&
                !consumers[i].empty();
    for (int c : consumers[i])
      if (!quantizable(c)) emit = false;
    qlayers_[i].emit_u8 = emit;
    // Quantize-on-demand target for this node's input.
    u8_acts_[static_cast<std::size_t>(src)].resize(in0.numel());
  }
  for (std::size_t i = 0; i < n; ++i)
    if (qlayers_[i].valid() && qlayers_[i].emit_u8)
      u8_acts_[i].resize(graph_.shape(static_cast<int>(i)).numel());

  // The INT8 path performs one arena alloc per node (the activation
  // quad buffer); make sure a single pre-reserved block can hold the
  // largest one so run() never grows the arena.
  if (max_quad_bytes > int8_scratch_bytes_) {
    scratch_.arena.reserve_bytes(scratch_.arena.capacity_bytes() +
                                 max_quad_bytes);
    int8_scratch_bytes_ = max_quad_bytes;
  }
}

const std::vector<Tensor>& Engine::run(const Tensor& input) {
  const FeatShape in_shape = graph_.input_shape();
  const Shape expected{1, in_shape.c, in_shape.h, in_shape.w};
  OCB_CHECK_MSG(input.shape() == expected,
                "engine input shape mismatch: got " + input.shape().str());
  maybe_verify_tick();

  const bool int8 = precision_ == Precision::kInt8;
  if (int8) std::fill(u8_valid_.begin(), u8_valid_.end(), 0);
  // Cleared in either mode: a float run after an INT8 one must not let
  // node_output() dequantize stale u8 over the fresh activations.
  std::fill(float_stale_.begin(), float_stale_.end(), 0);
  // Quantize a producer's float activation into its persistent u8
  // buffer on first use this frame (no-op when the producer already
  // emitted u8 directly).
  auto u8_input = [&](int s) -> const std::uint8_t* {
    const std::size_t si = static_cast<std::size_t>(s);
    if (u8_valid_[si] == 0) {
      // Per-image numel: the u8 buffers are sized for one image even
      // when prepare() widened the float activations.
      quantize_to_u8(activations_[si].data(), graph_.shape(s).numel(),
                     node_quant_[si], u8_acts_[si].data());
      u8_valid_[si] = 1;
    }
    return u8_acts_[si].data();
  };

  const int n = graph_.node_count();
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    const FeatShape out = graph_.shape(i);
    // Per-node activation view: the node's own buffer, or — under an
    // active fusion plan — a slot inside another node's buffer or the
    // planned arena.
    float* dstp = act_base_[static_cast<std::size_t>(i)];
    if (pack_dirty_[static_cast<std::size_t>(i)] != 0) repack(i);

    auto srcp = [&](std::size_t k) -> const float* {
      return act_base_[static_cast<std::size_t>(nd.inputs[k])];
    };

    switch (nd.kind) {
      case OpKind::kInput:
        // Same-shape copy: the pre-sized buffer is reused, keeping the
        // activation pointers stable.
        std::copy_n(input.data(), input.numel(), dstp);
        break;
      case OpKind::kConv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        const std::size_t ui = static_cast<std::size_t>(i);
        const std::size_t si = static_cast<std::size_t>(nd.inputs[0]);
        const ConvAlgo algo = plan_.nodes[ui].algo;
        if (int8 &&
            (algo == ConvAlgo::kIm2colQuant ||
             algo == ConvAlgo::kIm2colQuantFused) &&
            qlayers_[ui].valid()) {
          const bool fused_q = algo == ConvAlgo::kIm2colQuantFused;
          const std::uint8_t* inq = u8_input(nd.inputs[0]);
          if (qlayers_[ui].emit_u8) {
            qconv2d(inq, geom, qlayers_[ui], biases_[i].data(),
                    /*out_f32=*/nullptr, u8_acts_[ui].data(), scratch_,
                    fused_q);
            u8_valid_[ui] = 1;
            float_stale_[ui] = 1;
          } else {
            qconv2d(inq, geom, qlayers_[ui], biases_[i].data(), dstp,
                    /*out_u8=*/nullptr, scratch_, fused_q);
          }
          break;
        }
        // Residual fusion: this conv writes into the skipped Add's
        // buffer, combining per EpiMode. The buffer must hold the
        // other operand first — free when the plan aliased them.
        const NodeFusion& fus = fusion_.nodes[ui];
        EpiMode mode = EpiMode::kStore;
        Act act = nd.act;
        float* outp = dstp;
        std::size_t out_stride = act_stride_[ui];
        if (fus.residual_add) {
          const std::size_t ai = static_cast<std::size_t>(fus.residual_out);
          mode = fus.mode;
          act = fus.act;
          outp = act_base_[ai];
          out_stride = act_stride_[ai];
          if (fusion_.nodes[ai].place_parent != fus.residual_src)
            std::copy_n(
                act_base_[static_cast<std::size_t>(fus.residual_src)],
                graph_.shape(fus.residual_out).numel(), outp);
        }
        if (algo == ConvAlgo::kWinograd) {
          conv2d_winograd(srcp(0), act_stride_[si], /*batch=*/1, geom,
                          wino_panels_[ui], biases_[i].data(), act, outp,
                          out_stride, scratch_, mode);
        } else if (algo == ConvAlgo::kIm2colFused) {
          conv2d_fused(srcp(0), act_stride_[si], /*batch=*/1, geom,
                       packed_[ui], biases_[i].data(), act, outp,
                       out_stride, scratch_, mode);
        } else if (algo == ConvAlgo::kDirectGemm) {
          switch (plan_.nodes[ui].storage) {
            case WeightStorage::kHalf:
              conv2d_direct1x1(srcp(0), act_stride_[si], /*batch=*/1, geom,
                               half_packed_[ui], biases_[i].data(), nd.act,
                               outp, out_stride);
              break;
            case WeightStorage::kSparse:
            case WeightStorage::kSparseHalf:
              conv2d_direct1x1(srcp(0), act_stride_[si], /*batch=*/1, geom,
                               sparse_packed_[ui], biases_[i].data(), nd.act,
                               outp, out_stride);
              break;
            case WeightStorage::kDense:
              conv2d_direct1x1(srcp(0), act_stride_[si], /*batch=*/1, geom,
                               packed_[ui], biases_[i].data(), act, outp,
                               out_stride, mode);
              break;
          }
        } else {
          // Materialized im2col paths (never residual-fused).
          switch (plan_.nodes[ui].storage) {
            case WeightStorage::kHalf:
              conv2d(srcp(0), geom, half_packed_[ui], biases_[i].data(),
                     nd.act, dstp, scratch_);
              break;
            case WeightStorage::kSparse:
            case WeightStorage::kSparseHalf:
              conv2d(srcp(0), geom, sparse_packed_[ui], biases_[i].data(),
                     nd.act, dstp, scratch_);
              break;
            case WeightStorage::kDense:
              conv2d(srcp(0), geom, packed_[ui], biases_[i].data(), nd.act,
                     dstp, scratch_);
              break;
          }
        }
        break;
      }
      case OpKind::kDwConv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        dwconv2d(srcp(0), geom, weights_[i].data(), biases_[i].data(),
                 nd.act, dstp);
        break;
      }
      case OpKind::kDeconv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        deconv2d_2x(srcp(0), s.c, s.h, s.w, nd.out_c, weights_[i].data(),
                    biases_[i].data(), nd.act, dstp);
        break;
      }
      case OpKind::kMaxPool: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        maxpool2d(srcp(0), geom, dstp);
        break;
      }
      case OpKind::kUpsample: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        upsample2x_nearest(srcp(0), s.c, s.h, s.w, dstp);
        break;
      }
      case OpKind::kConcat: {
        // Inputs the fusion plan placed into this buffer already wrote
        // their channel range; copy only the rest.
        std::size_t coff = 0;
        for (int s : nd.inputs) {
          const std::size_t cn = graph_.shape(s).numel();
          if (fusion_.nodes[static_cast<std::size_t>(s)].place_parent != i)
            std::copy_n(act_base_[static_cast<std::size_t>(s)], cn,
                        dstp + coff);
          coff += cn;
        }
        break;
      }
      case OpKind::kAdd:
        if (fusion_.nodes[static_cast<std::size_t>(i)].skip)
          break;  // folded into the producer conv's epilogue
        add_elementwise(srcp(0), srcp(1), out.numel(), dstp);
        apply_activation(nd.act, dstp, out.numel());
        break;
      case OpKind::kSlice: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        slice_channels(srcp(0), s.c, s.h, s.w, nd.slice_begin, nd.slice_end,
                       dstp);
        break;
      }
      case OpKind::kGlobalAvgPool: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        global_avg_pool(srcp(0), s.c, s.h, s.w, dstp);
        break;
      }
      case OpKind::kLinear: {
        const std::size_t ui = static_cast<std::size_t>(i);
        if (int8 && qlayers_[ui].valid()) {
          qlinear(u8_input(nd.inputs[0]),
                  graph_.shape(nd.inputs[0]).numel(), qlayers_[ui],
                  biases_[i].data(), dstp, /*out_u8=*/nullptr, scratch_);
        } else {
          switch (plan_.nodes[ui].storage) {
            case WeightStorage::kHalf:
              linear(srcp(0), half_packed_[ui], biases_[i].data(), nd.act,
                     dstp);
              break;
            case WeightStorage::kSparse:
            case WeightStorage::kSparseHalf:
              linear(srcp(0), sparse_packed_[ui], biases_[i].data(), nd.act,
                     dstp);
              break;
            case WeightStorage::kDense:
              linear(srcp(0), packed_[ui], biases_[i].data(), nd.act, dstp);
              break;
          }
        }
        break;
      }
    }
  }

  has_run_ = true;
  // Snapshot image 0 into the pre-sized output tensors (activations are
  // {max_batch, ...} after a batched prepare(); batch-1 callers get
  // batch-1 tensors either way).
  materialize_outputs(0, outputs_);
  return outputs_;
}

std::span<const std::vector<Tensor>> Engine::run_batch(
    const std::vector<Tensor>& inputs) {
  const int batch = static_cast<int>(inputs.size());
  OCB_CHECK_MSG(batch >= 1, "run_batch needs at least one frame");
  OCB_CHECK_MSG(batch <= max_batch_,
                "run_batch exceeds the planned batch (prepare a larger "
                "PlanRequest::max_batch)");
  if (batch == 1 || precision_ == Precision::kInt8) {
    // A batch of one gains nothing from the widened lowering, and the
    // INT8 path keeps per-image quantized buffers.
    for (int b = 0; b < batch; ++b) {
      run(inputs[static_cast<std::size_t>(b)]);
      materialize_outputs(0, batch_outputs_[static_cast<std::size_t>(b)]);
    }
    return {batch_outputs_.data(), static_cast<std::size_t>(batch)};
  }
  const FeatShape in_shape = graph_.input_shape();
  const Shape expected{1, in_shape.c, in_shape.h, in_shape.w};
  for (const Tensor& in : inputs) {
    OCB_CHECK_MSG(in.shape() == expected,
                  "engine batch input shape mismatch: got " +
                      in.shape().str());
  }
  maybe_verify_tick();

  const int n = graph_.node_count();
  for (int i = 0; i < n; ++i) {
    const Node& nd = graph_.node(i);
    const FeatShape out = graph_.shape(i);
    const std::size_t out_chw = out.numel();
    const std::size_t ii = static_cast<std::size_t>(i);
    // This node's activation view: image b lives at dst_base + b *
    // dst_stride (the stride is the owning root's per-image extent
    // when the fusion plan placed this node inside another buffer).
    float* dst_base = act_base_[ii];
    const std::size_t dst_stride = act_stride_[ii];
    if (pack_dirty_[ii] != 0) repack(i);

    // Image b of input k's activation (all images are live: every node
    // below processes the full batch).
    auto src_at = [&](std::size_t k, int b) -> const float* {
      const std::size_t s = static_cast<std::size_t>(nd.inputs[k]);
      return act_base_[s] + static_cast<std::size_t>(b) * act_stride_[s];
    };
    auto dst_at = [&](int b) -> float* {
      return dst_base + static_cast<std::size_t>(b) * dst_stride;
    };

    switch (nd.kind) {
      case OpKind::kInput:
        for (int b = 0; b < batch; ++b) {
          std::copy_n(inputs[static_cast<std::size_t>(b)].data(), out_chw,
                      dst_at(b));
        }
        break;
      case OpKind::kConv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        const std::size_t ui = static_cast<std::size_t>(i);
        const std::size_t sstride =
            act_stride_[static_cast<std::size_t>(nd.inputs[0])];
        const WeightStorage st = plan_.nodes[ui].storage;
        // Residual fusion (see run()): retarget the write to the
        // skipped Add's buffer and preload the other operand per image
        // unless aliased.
        const NodeFusion& fus = fusion_.nodes[ui];
        EpiMode mode = EpiMode::kStore;
        Act act = nd.act;
        float* outp = dst_base;
        std::size_t out_stride = dst_stride;
        if (fus.residual_add) {
          const std::size_t ai = static_cast<std::size_t>(fus.residual_out);
          mode = fus.mode;
          act = fus.act;
          outp = act_base_[ai];
          out_stride = act_stride_[ai];
          if (fusion_.nodes[ai].place_parent != fus.residual_src) {
            const std::size_t xi =
                static_cast<std::size_t>(fus.residual_src);
            const std::size_t cn = graph_.shape(fus.residual_out).numel();
            for (int b = 0; b < batch; ++b)
              std::copy_n(act_base_[xi] +
                              static_cast<std::size_t>(b) * act_stride_[xi],
                          cn, outp + static_cast<std::size_t>(b) * out_stride);
          }
        }
        switch (plan_.nodes[ui].algo) {
          case ConvAlgo::kWinograd:
            conv2d_winograd(src_at(0, 0), sstride, batch, geom,
                            wino_panels_[ui], biases_[i].data(), act, outp,
                            out_stride, scratch_, mode);
            break;
          case ConvAlgo::kIm2colFused:
            conv2d_fused(src_at(0, 0), sstride, batch, geom, packed_[ui],
                         biases_[i].data(), act, outp, out_stride, scratch_,
                         mode);
            break;
          case ConvAlgo::kDirectGemm:
            switch (st) {
              case WeightStorage::kHalf:
                conv2d_direct1x1(src_at(0, 0), sstride, batch, geom,
                                 half_packed_[ui], biases_[i].data(), nd.act,
                                 outp, out_stride);
                break;
              case WeightStorage::kSparse:
              case WeightStorage::kSparseHalf:
                conv2d_direct1x1(src_at(0, 0), sstride, batch, geom,
                                 sparse_packed_[ui], biases_[i].data(),
                                 nd.act, outp, out_stride);
                break;
              case WeightStorage::kDense:
                conv2d_direct1x1(src_at(0, 0), sstride, batch, geom,
                                 packed_[ui], biases_[i].data(), act, outp,
                                 out_stride, mode);
                break;
            }
            break;
          default:
            switch (st) {
              case WeightStorage::kHalf:
                conv2d_batched(src_at(0, 0), sstride, batch, geom,
                               half_packed_[ui], biases_[i].data(), nd.act,
                               outp, out_stride, scratch_);
                break;
              case WeightStorage::kSparse:
              case WeightStorage::kSparseHalf:
                conv2d_batched(src_at(0, 0), sstride, batch, geom,
                               sparse_packed_[ui], biases_[i].data(), nd.act,
                               outp, out_stride, scratch_);
                break;
              case WeightStorage::kDense:
                conv2d_batched(src_at(0, 0), sstride, batch, geom,
                               packed_[ui], biases_[i].data(), nd.act, outp,
                               out_stride, scratch_);
                break;
            }
            break;
        }
        break;
      }
      case OpKind::kDwConv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        for (int b = 0; b < batch; ++b) {
          dwconv2d(src_at(0, b), geom, weights_[i].data(), biases_[i].data(),
                   nd.act, dst_at(b));
        }
        break;
      }
      case OpKind::kDeconv: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        for (int b = 0; b < batch; ++b) {
          deconv2d_2x(src_at(0, b), s.c, s.h, s.w, nd.out_c,
                      weights_[i].data(), biases_[i].data(), nd.act,
                      dst_at(b));
        }
        break;
      }
      case OpKind::kMaxPool: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        const ConvGeometry geom{s.c, s.h, s.w, nd.kernel, nd.kernel,
                                nd.stride, nd.pad};
        for (int b = 0; b < batch; ++b) {
          maxpool2d(src_at(0, b), geom, dst_at(b));
        }
        break;
      }
      case OpKind::kUpsample: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        for (int b = 0; b < batch; ++b) {
          upsample2x_nearest(src_at(0, b), s.c, s.h, s.w, dst_at(b));
        }
        break;
      }
      case OpKind::kConcat: {
        for (int b = 0; b < batch; ++b) {
          std::size_t coff = 0;
          for (std::size_t k = 0; k < nd.inputs.size(); ++k) {
            const int sn = nd.inputs[k];
            const std::size_t cn = graph_.shape(sn).numel();
            if (fusion_.nodes[static_cast<std::size_t>(sn)].place_parent !=
                i)
              std::copy_n(src_at(k, b), cn, dst_at(b) + coff);
            coff += cn;
          }
        }
        break;
      }
      case OpKind::kAdd: {
        if (fusion_.nodes[ii].skip)
          break;  // folded into the producer conv's epilogue
        const std::size_t s0 = static_cast<std::size_t>(nd.inputs[0]);
        const std::size_t s1 = static_cast<std::size_t>(nd.inputs[1]);
        if (act_stride_[s0] == out_chw && act_stride_[s1] == out_chw &&
            dst_stride == out_chw) {
          // All three buffers hold the batch contiguously: one call
          // covers every image.
          add_elementwise(src_at(0, 0), src_at(1, 0),
                          out_chw * static_cast<std::size_t>(batch),
                          dst_base);
          apply_activation(nd.act, dst_base,
                           out_chw * static_cast<std::size_t>(batch));
        } else {
          for (int b = 0; b < batch; ++b) {
            add_elementwise(src_at(0, b), src_at(1, b), out_chw, dst_at(b));
            apply_activation(nd.act, dst_at(b), out_chw);
          }
        }
        break;
      }
      case OpKind::kSlice: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        for (int b = 0; b < batch; ++b) {
          slice_channels(src_at(0, b), s.c, s.h, s.w, nd.slice_begin,
                         nd.slice_end, dst_at(b));
        }
        break;
      }
      case OpKind::kGlobalAvgPool: {
        const FeatShape s = graph_.shape(nd.inputs[0]);
        for (int b = 0; b < batch; ++b) {
          global_avg_pool(src_at(0, b), s.c, s.h, s.w, dst_at(b));
        }
        break;
      }
      case OpKind::kLinear: {
        const std::size_t ui = static_cast<std::size_t>(i);
        for (int b = 0; b < batch; ++b) {
          float* obuf = dst_at(b);
          switch (plan_.nodes[ui].storage) {
            case WeightStorage::kHalf:
              linear(src_at(0, b), half_packed_[ui], biases_[i].data(),
                     nd.act, obuf);
              break;
            case WeightStorage::kSparse:
            case WeightStorage::kSparseHalf:
              linear(src_at(0, b), sparse_packed_[ui], biases_[i].data(),
                     nd.act, obuf);
              break;
            case WeightStorage::kDense:
              linear(src_at(0, b), packed_[ui], biases_[i].data(), nd.act,
                     obuf);
              break;
          }
        }
        break;
      }
    }
  }

  has_run_ = true;
  std::fill(float_stale_.begin(), float_stale_.end(), 0);
  for (int b = 0; b < batch; ++b)
    materialize_outputs(b, batch_outputs_[static_cast<std::size_t>(b)]);
  return {batch_outputs_.data(), static_cast<std::size_t>(batch)};
}

const Tensor& Engine::node_output(int node) const {
  OCB_CHECK(node >= 0 && node < graph_.node_count());
  OCB_CHECK_MSG(has_run_, "node_output before run()");
  const std::size_t i = static_cast<std::size_t>(node);
  if (act_base_[i] != activations_[i].data()) {
    // The fusion plan keeps this node's data inside another buffer (or
    // the shared arena); materialise the per-node view on demand.
    const std::size_t numel = graph_.shape(node).numel();
    for (int b = 0; b < max_batch_; ++b)
      std::copy_n(act_base_[i] + static_cast<std::size_t>(b) * act_stride_[i],
                  numel,
                  activations_[i].data() + static_cast<std::size_t>(b) * numel);
  }
  if (!float_stale_.empty() && float_stale_[i] != 0) {
    // The node kept its output in u8 (all consumers were INT8);
    // materialise the float view on demand.
    Tensor& dst = activations_[i];
    dequantize_u8(u8_acts_[i].data(), graph_.shape(node).numel(),
                  node_quant_[i], dst.data());
    float_stale_[i] = 0;
  }
  return activations_[i];
}

Tensor& Engine::weight(int node) {
  OCB_CHECK(node >= 0 && node < graph_.node_count());
  OCB_CHECK_MSG(!weights_[static_cast<std::size_t>(node)].empty(),
                "node has no weights");
  pack_dirty_[static_cast<std::size_t>(node)] = 1;
  return weights_[static_cast<std::size_t>(node)];
}

Tensor& Engine::bias(int node) {
  OCB_CHECK(node >= 0 && node < graph_.node_count());
  OCB_CHECK_MSG(!biases_[static_cast<std::size_t>(node)].empty(),
                "node has no bias");
  return biases_[static_cast<std::size_t>(node)];
}

}  // namespace ocb::nn
