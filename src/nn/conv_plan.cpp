#include "nn/conv_plan.hpp"

#include "core/check.hpp"
#include "core/rng.hpp"
#include "core/thread_annotations.hpp"

namespace ocb::nn {

const char* precision_name(Precision precision) noexcept {
  switch (precision) {
    case Precision::kFp32: return "fp32";
    case Precision::kFp16: return "fp16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

const char* weight_storage_name(WeightStorage storage) noexcept {
  switch (storage) {
    case WeightStorage::kDense: return "dense";
    case WeightStorage::kHalf: return "half";
    case WeightStorage::kSparse: return "sparse";
    case WeightStorage::kSparseHalf: return "sparse-half";
  }
  return "?";
}

const char* conv_algo_name(ConvAlgo algo) noexcept {
  switch (algo) {
    case ConvAlgo::kIm2colGemm: return "im2col";
    case ConvAlgo::kDirectGemm: return "direct";
    case ConvAlgo::kWinograd: return "winograd";
    case ConvAlgo::kIm2colQuant: return "int8-im2col";
    case ConvAlgo::kIm2colFused: return "im2col-fused";
    case ConvAlgo::kIm2colQuantFused: return "int8-im2col-fused";
  }
  return "?";
}

std::size_t ConvPlanKeyHash::operator()(const ConvPlanKey& key) const
    noexcept {
  auto mix = [](std::uint64_t h, std::uint64_t v) {
    return hash_combine(h, v);
  };
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.in_c)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.in_h)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.in_w)));
  h = mix(h,
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.kernel)));
  h = mix(h,
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.stride)));
  h = mix(h, static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.pad)));
  h = mix(h,
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.out_c)));
  h = mix(h,
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(key.batch)));
  h = mix(h, static_cast<std::uint64_t>(key.precision));
  h = mix(h, static_cast<std::uint64_t>(key.level));
  h = mix(h, static_cast<std::uint64_t>(
                 static_cast<std::uint32_t>(key.sparsity_pct)));
  return static_cast<std::size_t>(h);
}

PlanCache::PlanCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  MutexLock lock(mutex_);
  stats_.capacity = capacity_;
  map_.reserve(capacity_);
  order_.reserve(capacity_);
}

bool PlanCache::lookup(const ConvPlanKey& key, ConvPlan* plan) {
  OCB_CHECK_MSG(plan != nullptr, "PlanCache::lookup needs an out-plan");
  MutexLock lock(mutex_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *plan = it->second;
  return true;
}

void PlanCache::insert(const ConvPlanKey& key, const ConvPlan& plan) {
  MutexLock lock(mutex_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second = plan;  // refresh in place; FIFO position unchanged
    return;
  }
  if (map_.size() >= capacity_) {
    // order_ is full exactly when the map is: reuse the oldest slot.
    map_.erase(order_[next_evict_]);
    order_[next_evict_] = key;
    next_evict_ = (next_evict_ + 1) % capacity_;
    ++stats_.evictions;
  } else {
    order_.push_back(key);
  }
  map_.emplace(key, plan);
  ++stats_.insertions;
  stats_.size = map_.size();
}

PlanCache::Stats PlanCache::stats() const {
  MutexLock lock(mutex_);
  Stats out = stats_;
  out.size = map_.size();
  return out;
}

void PlanCache::clear() {
  MutexLock lock(mutex_);
  map_.clear();
  order_.clear();
  next_evict_ = 0;
  stats_ = Stats{};
  stats_.capacity = capacity_;
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

}  // namespace ocb::nn
