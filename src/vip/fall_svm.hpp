// Fall detection: linear SVM over body-pose keypoints.
//
// The paper integrates trt_pose "with an SVM classifier to detect fall
// scenarios" (§3). We implement that classifier: geometric features
// from 18 COCO-style keypoints, a linear SVM trained by subgradient
// descent on the hinge loss, and a synthetic pose sampler (standing /
// walking vs. fallen) for training and evaluation.
#pragma once

#include <array>
#include <vector>

#include "core/rng.hpp"

namespace ocb::vip {

inline constexpr int kKeypoints = 18;

/// One pose: 18 (x, y) keypoints in normalised image coordinates.
struct Pose {
  std::array<float, kKeypoints> x{};
  std::array<float, kKeypoints> y{};
};

/// Feature vector: torso inclination, bbox aspect, head-relative
/// height, hip height, limb spread (+ bias handled by the SVM).
inline constexpr int kPoseFeatures = 5;
std::array<float, kPoseFeatures> pose_features(const Pose& pose) noexcept;

/// Sample a synthetic standing/walking pose (upright, swinging limbs).
Pose sample_standing_pose(Rng& rng);
/// Sample a fallen pose (horizontal body axis, low head).
Pose sample_fallen_pose(Rng& rng);

struct SvmConfig {
  float lr = 0.05f;
  float regularization = 1e-3f;
  int epochs = 60;
};

class FallSvm {
 public:
  explicit FallSvm(SvmConfig config = {});

  /// Train on labelled poses (label true = fallen).
  void train(const std::vector<Pose>& poses, const std::vector<bool>& fallen,
             Rng& rng);

  /// Signed decision value (> 0 ⇒ fallen).
  float decision(const Pose& pose) const noexcept;
  bool is_fallen(const Pose& pose) const noexcept {
    return decision(pose) > 0.0f;
  }

  /// Accuracy over a labelled set.
  double evaluate(const std::vector<Pose>& poses,
                  const std::vector<bool>& fallen) const;

  bool trained() const noexcept { return trained_; }

 private:
  SvmConfig config_;
  std::array<float, kPoseFeatures> weights_{};
  float bias_ = 0.0f;
  bool trained_ = false;
};

}  // namespace ocb::vip
