#include "vip/plausibility.hpp"

#include <algorithm>
#include <cmath>

#include "core/check.hpp"

namespace ocb::vip {

namespace {

bool finite_box(const Detection& d) noexcept {
  return std::isfinite(d.box.x0) && std::isfinite(d.box.y0) &&
         std::isfinite(d.box.x1) && std::isfinite(d.box.y1) &&
         std::isfinite(d.confidence);
}

}  // namespace

PlausibilityChecker::PlausibilityChecker(PlausibilityConfig config)
    : config_(config) {
  OCB_CHECK_MSG(config_.min_extent_px >= 0.0f,
                "min_extent_px must be non-negative");
  OCB_CHECK_MSG(config_.sectors > 0, "plausibility needs >= 1 sector");
}

FrameVerdict PlausibilityChecker::check(const std::vector<Detection>& dets,
                                        float frame_w,
                                        float frame_h) const {
  (void)frame_w;
  (void)frame_h;
  FrameVerdict v;
  if (dets.size() > config_.max_detections) v.flags |= kTooManyDetections;
  for (const Detection& d : dets) {
    unsigned box_flags = 0;
    if (!finite_box(d)) {
      box_flags |= kNonFiniteBox;
    } else {
      if (d.box.width() < config_.min_extent_px ||
          d.box.height() < config_.min_extent_px)
        box_flags |= kDegenerateBox;
      if (d.confidence < 0.0f || d.confidence > 1.0f)
        box_flags |= kScoreOutOfRange;
    }
    if (box_flags != 0) ++v.suspect_boxes;
    v.flags |= box_flags;
  }
  return v;
}

FrameVerdict PlausibilityChecker::check(
    const std::vector<Detection>& dets, const Image& depth,
    const std::vector<SectorReading>& sectors) const {
  const float w = static_cast<float>(depth.width());
  const float h = static_cast<float>(depth.height());
  FrameVerdict v = check(dets, w, h);
  for (const Detection& d : dets) {
    if (!finite_box(d)) continue;  // already flagged above
    unsigned box_flags = 0;

    // Depth finiteness inside the (clipped) box: a NaN/Inf depth pixel
    // under a detection poisons the distance estimate the navigator
    // would act on.
    const Box b = d.box.clipped(w, h);
    if (b.valid()) {
      const int x0 = static_cast<int>(b.x0);
      const int y0 = static_cast<int>(b.y0);
      const int x1 = std::min(depth.width(), static_cast<int>(b.x1) + 1);
      const int y1 = std::min(depth.height(), static_cast<int>(b.y1) + 1);
      for (int y = y0; y < y1 && box_flags == 0; ++y)
        for (int x = x0; x < x1; ++x)
          if (!std::isfinite(depth.at(0, y, x))) {
            box_flags |= kNonFiniteDepth;
            break;
          }
    }

    // Cross-check: a box tall enough to read as "near" while the depth
    // map's matching sector reports clear space well beyond the
    // cross-check distance means detector and depth model disagree
    // about the same scene — one of them is lying.
    if (h > 0.0f && d.box.height() > config_.near_height_frac * h &&
        !sectors.empty()) {
      const float sector_w = w / static_cast<float>(config_.sectors);
      const int sector = std::clamp(
          sector_w > 0.0f ? static_cast<int>(d.box.cx() / sector_w) : 0, 0,
          config_.sectors - 1);
      for (const SectorReading& s : sectors)
        if (s.sector == sector && s.nearest_m > config_.cross_check_m)
          box_flags |= kDepthDisagreement;
    }

    if (box_flags != 0) ++v.suspect_boxes;
    v.flags |= box_flags;
  }
  return v;
}

}  // namespace ocb::vip
