#include "vip/alerts.hpp"

namespace ocb::vip {

const char* alert_kind_name(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::kVipLost: return "vip_lost";
    case AlertKind::kVipReacquired: return "vip_reacquired";
    case AlertKind::kObstacle: return "obstacle";
    case AlertKind::kFallDetected: return "fall_detected";
    case AlertKind::kLowConfidence: return "low_confidence";
  }
  return "?";
}

Severity alert_severity(AlertKind kind) noexcept {
  switch (kind) {
    case AlertKind::kFallDetected: return Severity::kCritical;
    case AlertKind::kVipLost:
    case AlertKind::kObstacle: return Severity::kWarning;
    case AlertKind::kVipReacquired:
    case AlertKind::kLowConfidence: return Severity::kInfo;
  }
  return Severity::kInfo;
}

AlertManager::AlertManager(AlertConfig config) : config_(config) {}

bool AlertManager::raise(AlertKind kind, const std::string& message,
                         double now_s) {
  const bool critical = alert_severity(kind) == Severity::kCritical;
  auto it = last_emitted_.find(kind);
  if (!critical && it != last_emitted_.end() &&
      now_s - it->second < config_.repeat_interval_s) {
    ++suppressed_;
    return false;
  }
  last_emitted_[kind] = now_s;
  ++counts_[kind];
  history_.push_back(Alert{kind, message, now_s});
  while (history_.size() > config_.history_limit) history_.pop_front();
  return true;
}

std::size_t AlertManager::emitted(AlertKind kind) const {
  auto it = counts_.find(kind);
  return it == counts_.end() ? 0 : it->second;
}

}  // namespace ocb::vip
