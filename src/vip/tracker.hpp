// VIP (hazard-vest) tracker.
//
// Smooths per-frame detections into a stable track: exponential box
// smoothing, confidence gating, and a lost-track counter that triggers
// re-acquisition alerts — the "uniquely identify the VIP" layer on top
// of raw detection.
#pragma once

#include <optional>

#include "detect/box.hpp"

namespace ocb::vip {

struct TrackerConfig {
  float smoothing = 0.6f;        ///< EMA weight of the previous box
  float min_confidence = 0.45f;
  float max_jump_iou = 0.05f;    ///< below this overlap a jump is rejected
  int lost_after = 8;            ///< frames without detection → lost
};

struct TrackState {
  Box box;
  float confidence = 0.0f;
  bool locked = false;   ///< currently tracking the VIP
  int frames_since_seen = 0;
};

class VestTracker {
 public:
  explicit VestTracker(TrackerConfig config = {});

  /// Feed one frame's detections (post-NMS); returns the updated state.
  const TrackState& update(const std::vector<Detection>& detections);

  const TrackState& state() const noexcept { return state_; }
  void reset() noexcept;

 private:
  TrackerConfig config_;
  TrackState state_;
};

}  // namespace ocb::vip
