#include "vip/tracker.hpp"

#include "detect/nms.hpp"

namespace ocb::vip {

VestTracker::VestTracker(TrackerConfig config) : config_(config) {}

void VestTracker::reset() noexcept { state_ = TrackState{}; }

const TrackState& VestTracker::update(
    const std::vector<Detection>& detections) {
  // Pick the best acceptable detection: highest confidence above the
  // gate, preferring overlap with the current track.
  const Detection* best = nullptr;
  float best_score = 0.0f;
  for (const Detection& det : detections) {
    if (det.class_id != kHazardVestClass) continue;
    if (det.confidence < config_.min_confidence) continue;
    float score = det.confidence;
    if (state_.locked) {
      const float overlap = iou(det.box, state_.box);
      if (overlap < config_.max_jump_iou && det.confidence < 0.9f)
        continue;  // reject implausible teleports unless very confident
      score += overlap;  // prefer continuity
    }
    if (best == nullptr || score > best_score) {
      best = &det;
      best_score = score;
    }
  }

  if (best == nullptr) {
    ++state_.frames_since_seen;
    if (state_.frames_since_seen > config_.lost_after) state_.locked = false;
    return state_;
  }

  if (!state_.locked) {
    state_.box = best->box;
  } else {
    const float a = config_.smoothing;
    state_.box.x0 = a * state_.box.x0 + (1.0f - a) * best->box.x0;
    state_.box.y0 = a * state_.box.y0 + (1.0f - a) * best->box.y0;
    state_.box.x1 = a * state_.box.x1 + (1.0f - a) * best->box.x1;
    state_.box.y1 = a * state_.box.y1 + (1.0f - a) * best->box.y1;
  }
  state_.confidence = best->confidence;
  state_.locked = true;
  state_.frames_since_seen = 0;
  return state_;
}

}  // namespace ocb::vip
