#include "vip/fall_svm.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace ocb::vip {

namespace {
// COCO-ish indices used by the feature extractor.
constexpr int kNose = 0;
constexpr int kNeck = 1;
constexpr int kLHip = 8;
constexpr int kRHip = 11;
constexpr int kLAnkle = 10;
constexpr int kRAnkle = 13;
}  // namespace

std::array<float, kPoseFeatures> pose_features(const Pose& pose) noexcept {
  float min_x = 1e9f, max_x = -1e9f, min_y = 1e9f, max_y = -1e9f;
  for (int k = 0; k < kKeypoints; ++k) {
    min_x = std::min(min_x, pose.x[k]);
    max_x = std::max(max_x, pose.x[k]);
    min_y = std::min(min_y, pose.y[k]);
    max_y = std::max(max_y, pose.y[k]);
  }
  const float width = std::max(1e-3f, max_x - min_x);
  const float height = std::max(1e-3f, max_y - min_y);

  const float hip_x = 0.5f * (pose.x[kLHip] + pose.x[kRHip]);
  const float hip_y = 0.5f * (pose.y[kLHip] + pose.y[kRHip]);
  const float torso_dx = pose.x[kNeck] - hip_x;
  const float torso_dy = pose.y[kNeck] - hip_y;
  // Torso inclination from vertical: 0 upright, ~π/2 horizontal.
  const float incline =
      std::atan2(std::fabs(torso_dx), std::fabs(torso_dy) + 1e-5f);

  const float ankle_y = 0.5f * (pose.y[kLAnkle] + pose.y[kRAnkle]);
  // Head height relative to the body extent (1 = head on the ground).
  const float head_rel = (pose.y[kNose] - min_y) / height;
  const float hip_rel = (ankle_y - hip_y) / height;

  return {incline, width / height, head_rel, hip_rel, width};
}

Pose sample_standing_pose(Rng& rng) {
  Pose pose;
  const float cx = static_cast<float>(rng.uniform(0.3, 0.7));
  const float head_y = static_cast<float>(rng.uniform(0.1, 0.25));
  const float scale = static_cast<float>(rng.uniform(0.45, 0.65));
  const float lean = static_cast<float>(rng.uniform(-0.06, 0.06));
  auto jit = [&] { return static_cast<float>(rng.normal(0.0, 0.012)); };

  const float neck_y = head_y + 0.12f * scale;
  const float hip_y = head_y + 0.52f * scale;
  const float knee_y = head_y + 0.75f * scale;
  const float ankle_y = head_y + scale;
  const float sw = static_cast<float>(rng.uniform(-0.05, 0.05));  // stride

  auto set = [&](int k, float x, float y) {
    pose.x[k] = x + jit();
    pose.y[k] = y + jit();
  };
  set(0, cx + lean, head_y);                       // nose
  set(1, cx + lean * 0.7f, neck_y);                // neck
  set(2, cx - 0.08f * scale, neck_y + 0.02f);      // shoulders
  set(5, cx + 0.08f * scale, neck_y + 0.02f);
  set(3, cx - 0.10f * scale, neck_y + 0.22f * scale);  // elbows
  set(6, cx + 0.10f * scale, neck_y + 0.22f * scale);
  set(4, cx - 0.11f * scale, hip_y);               // wrists
  set(7, cx + 0.11f * scale, hip_y);
  set(8, cx - 0.06f * scale, hip_y);               // hips
  set(11, cx + 0.06f * scale, hip_y);
  set(9, cx - 0.06f * scale + sw, knee_y);         // knees
  set(12, cx + 0.06f * scale - sw, knee_y);
  set(10, cx - 0.06f * scale + 1.5f * sw, ankle_y);  // ankles
  set(13, cx + 0.06f * scale - 1.5f * sw, ankle_y);
  set(14, cx - 0.03f * scale + lean, head_y + 0.01f);  // eyes
  set(15, cx + 0.03f * scale + lean, head_y + 0.01f);
  set(16, cx - 0.05f * scale + lean, head_y + 0.03f);  // ears
  set(17, cx + 0.05f * scale + lean, head_y + 0.03f);
  return pose;
}

Pose sample_fallen_pose(Rng& rng) {
  Pose pose;
  const float cy = static_cast<float>(rng.uniform(0.72, 0.9));  // near ground
  const float cx = static_cast<float>(rng.uniform(0.25, 0.75));
  const float scale = static_cast<float>(rng.uniform(0.45, 0.65));
  const float dir = rng.bernoulli(0.5) ? 1.0f : -1.0f;
  const float sag = static_cast<float>(rng.uniform(-0.04, 0.04));
  auto jit = [&] { return static_cast<float>(rng.normal(0.0, 0.018)); };

  // Body axis is horizontal: head at one end, ankles at the other.
  auto set = [&](int k, float along, float across) {
    pose.x[k] = cx + dir * along * scale + jit();
    pose.y[k] = cy + across * scale + sag + jit();
  };
  set(0, -0.50f, -0.02f);  // nose
  set(1, -0.38f, 0.0f);    // neck
  set(2, -0.36f, -0.07f);
  set(5, -0.36f, 0.07f);
  set(3, -0.20f, -0.10f);
  set(6, -0.20f, 0.10f);
  set(4, -0.05f, -0.11f);
  set(7, -0.05f, 0.11f);
  set(8, 0.02f, -0.05f);   // hips
  set(11, 0.02f, 0.05f);
  set(9, 0.25f, -0.06f);
  set(12, 0.25f, 0.06f);
  set(10, 0.50f, -0.05f);  // ankles
  set(13, 0.50f, 0.05f);
  set(14, -0.52f, -0.04f);
  set(15, -0.52f, 0.0f);
  set(16, -0.50f, -0.06f);
  set(17, -0.50f, 0.02f);
  return pose;
}

FallSvm::FallSvm(SvmConfig config) : config_(config) {}

void FallSvm::train(const std::vector<Pose>& poses,
                    const std::vector<bool>& fallen, Rng& rng) {
  OCB_CHECK_MSG(poses.size() == fallen.size() && !poses.empty(),
                "SVM training set mismatch");
  std::vector<std::size_t> order(poses.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    const float lr =
        config_.lr / (1.0f + 0.1f * static_cast<float>(epoch));
    for (std::size_t idx : order) {
      const auto f = pose_features(poses[idx]);
      const float y = fallen[idx] ? 1.0f : -1.0f;
      float margin = bias_;
      for (int k = 0; k < kPoseFeatures; ++k) margin += weights_[k] * f[k];
      margin *= y;
      for (int k = 0; k < kPoseFeatures; ++k) {
        float grad = config_.regularization * weights_[k];
        if (margin < 1.0f) grad -= y * f[k];
        weights_[k] -= lr * grad;
      }
      if (margin < 1.0f) bias_ += lr * y;
    }
  }
  trained_ = true;
}

float FallSvm::decision(const Pose& pose) const noexcept {
  const auto f = pose_features(pose);
  float value = bias_;
  for (int k = 0; k < kPoseFeatures; ++k) value += weights_[k] * f[k];
  return value;
}

double FallSvm::evaluate(const std::vector<Pose>& poses,
                         const std::vector<bool>& fallen) const {
  OCB_CHECK_MSG(poses.size() == fallen.size() && !poses.empty(),
                "SVM eval set mismatch");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < poses.size(); ++i)
    if (is_fallen(poses[i]) == fallen[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(poses.size());
}

}  // namespace ocb::vip
