#include "vip/navigator.hpp"

#include <sstream>

#include "core/error.hpp"
#include "dataset/render.hpp"

namespace ocb::vip {

Navigator::Navigator(const models::MiniYolo* detector,
                     const FallSvm* fall_svm, NavigatorConfig config)
    : detector_(detector),
      fall_svm_(fall_svm),
      config_(config),
      alerts_(config.alerts) {
  OCB_CHECK_MSG(detector_ != nullptr, "navigator needs a detector");
  OCB_CHECK_MSG(fall_svm_ != nullptr && fall_svm_->trained(),
                "navigator needs a trained fall classifier");
}

FrameReport Navigator::process(const runtime::Frame& frame, Rng& rng) {
  FrameReport report;
  const double now = frame.timestamp_s;

  // 1) Vest detection + tracking.
  const auto detections =
      detector_->detect(frame.image, config_.detector_confidence);
  report.track = tracker_.update(detections);

  if (was_locked_ && !report.track.locked)
    alerts_.raise(AlertKind::kVipLost, "lost sight of the VIP", now);
  if (!was_locked_ && report.track.locked)
    alerts_.raise(AlertKind::kVipReacquired, "VIP reacquired", now);
  was_locked_ = report.track.locked;

  if (report.track.locked && report.track.confidence < 0.55f)
    alerts_.raise(AlertKind::kLowConfidence, "detection confidence low", now);

  // 2) Depth → obstacle sectors. Ground-truth depth stands in for
  //    Monodepth2 (the paper treats depth as an off-the-shelf model).
  ObstacleConfig obstacle_cfg = config_.obstacle;
  obstacle_cfg.vip_distance_m = frame.spec.vip_distance;
  ObstacleDetector obstacle(obstacle_cfg);
  const Image depth =
      dataset::render_depth(frame.spec, frame.image.width(),
                            frame.image.height());
  report.obstacles = obstacle.analyse(depth);
  for (const SectorReading& r : report.obstacles) {
    if (!r.alert) continue;
    std::ostringstream msg;
    msg << "obstacle " << obstacle.sector_name(r.sector) << " at "
        << r.nearest_m << " m";
    alerts_.raise(AlertKind::kObstacle, msg.str(), now);
  }

  // 3) Pose → fall. Synthetic keypoints stand in for trt_pose output;
  //    the VIP walks upright unless the scene sways extremely.
  const Pose pose = sample_standing_pose(rng);
  report.fall = fall_svm_->is_fallen(pose);
  if (report.fall)
    alerts_.raise(AlertKind::kFallDetected, "VIP fall detected!", now);

  // Collect alerts emitted this frame.
  for (auto it = alerts_.history().rbegin(); it != alerts_.history().rend();
       ++it) {
    if (it->timestamp_s < now) break;
    report.new_alerts.push_back(*it);
  }
  return report;
}

}  // namespace ocb::vip
