// The Ocularone application: VIP navigation assistance.
//
// Glues the whole stack together per frame: vest detection (a trained
// MiniYolo) → tracking, pose → fall SVM, depth → obstacle sectors, and
// alerting. This is what the benchmark suite exists to serve, and what
// the vip_navigation example drives end to end.
#pragma once

#include <memory>

#include "models/mini_yolo.hpp"
#include "runtime/frame_source.hpp"
#include "vip/alerts.hpp"
#include "vip/fall_svm.hpp"
#include "vip/obstacle.hpp"
#include "vip/tracker.hpp"

namespace ocb::vip {

struct NavigatorConfig {
  float detector_confidence = 0.45f;
  ObstacleConfig obstacle;
  AlertConfig alerts;
};

struct FrameReport {
  TrackState track;
  std::vector<SectorReading> obstacles;
  bool fall = false;
  std::vector<Alert> new_alerts;
};

class Navigator {
 public:
  /// The navigator borrows a trained detector and fall classifier.
  Navigator(const models::MiniYolo* detector, const FallSvm* fall_svm,
            NavigatorConfig config = {});

  /// Process one camera frame (with its ground-truth scene used as the
  /// depth/pose oracle, standing in for Monodepth2/trt_pose outputs).
  FrameReport process(const runtime::Frame& frame, Rng& rng);

  const AlertManager& alerts() const noexcept { return alerts_; }
  const VestTracker& tracker() const noexcept { return tracker_; }

 private:
  const models::MiniYolo* detector_;
  const FallSvm* fall_svm_;
  NavigatorConfig config_;
  VestTracker tracker_;
  AlertManager alerts_;
  bool was_locked_ = false;
};

}  // namespace ocb::vip
