// Alert manager: turns pipeline events into rate-limited, prioritised
// guidance messages (the audio channel to the VIP in Ocularone).
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

namespace ocb::vip {

enum class AlertKind {
  kVipLost,        ///< tracker lost the vest
  kVipReacquired,
  kObstacle,
  kFallDetected,
  kLowConfidence,
};

enum class Severity { kInfo = 0, kWarning = 1, kCritical = 2 };

const char* alert_kind_name(AlertKind kind) noexcept;
Severity alert_severity(AlertKind kind) noexcept;

struct Alert {
  AlertKind kind;
  std::string message;
  double timestamp_s = 0.0;
};

struct AlertConfig {
  double repeat_interval_s = 3.0;  ///< min gap between same-kind alerts
  std::size_t history_limit = 256;
};

class AlertManager {
 public:
  explicit AlertManager(AlertConfig config = {});

  /// Raise an alert; returns true if it was emitted (not rate-limited).
  /// Critical alerts bypass rate limiting.
  bool raise(AlertKind kind, const std::string& message, double now_s);

  const std::deque<Alert>& history() const noexcept { return history_; }
  std::size_t emitted(AlertKind kind) const;
  std::size_t suppressed() const noexcept { return suppressed_; }

 private:
  AlertConfig config_;
  std::deque<Alert> history_;
  std::map<AlertKind, double> last_emitted_;
  std::map<AlertKind, std::size_t> counts_;
  std::size_t suppressed_ = 0;
};

}  // namespace ocb::vip
