#include "vip/obstacle.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace ocb::vip {

ObstacleDetector::ObstacleDetector(ObstacleConfig config) : config_(config) {
  OCB_CHECK_MSG(config_.sectors >= 1, "need at least one sector");
}

std::vector<SectorReading> ObstacleDetector::analyse(
    const Image& depth) const {
  OCB_CHECK_MSG(depth.channels() == 1, "depth map must be single-channel");
  std::vector<SectorReading> readings(
      static_cast<std::size_t>(config_.sectors));
  for (int s = 0; s < config_.sectors; ++s) readings[s].sector = s;

  const int y0 = static_cast<int>(config_.roi_top * depth.height());
  const int sector_w = depth.width() / config_.sectors;

  for (int y = y0; y < depth.height(); ++y) {
    // Expected ground distance at this scanline: obstacles must stand
    // clear of the ground plane by ground_margin.
    for (int x = 0; x < depth.width(); ++x) {
      const float d = depth.at(0, y, x);
      // Ground rejection: the lowest value in the same column *below*
      // is ground; simpler robust proxy — ignore readings deeper than
      // 95% of the bottom-row value for this column.
      const float ground_d = depth.at(0, depth.height() - 1, x);
      if (d > ground_d - config_.ground_margin_m && ground_d < 25.0f &&
          y > depth.height() * 3 / 4)
        continue;  // ground plane, not an obstacle
      if (config_.vip_distance_m > 0.0f &&
          std::fabs(d - config_.vip_distance_m) < 0.3f)
        continue;  // that's the VIP themself
      const int s =
          std::min(config_.sectors - 1, x / std::max(1, sector_w));
      readings[static_cast<std::size_t>(s)].nearest_m =
          std::min(readings[static_cast<std::size_t>(s)].nearest_m, d);
    }
  }
  for (SectorReading& r : readings)
    r.alert = r.nearest_m <= config_.alert_distance_m;
  return readings;
}

std::string ObstacleDetector::sector_name(int sector) const {
  if (config_.sectors == 3) {
    switch (sector) {
      case 0: return "left";
      case 1: return "ahead";
      case 2: return "right";
      default: break;
    }
  }
  return "sector " + std::to_string(sector);
}

}  // namespace ocb::vip
