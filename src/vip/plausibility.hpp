// Output-plausibility cross-checks (DESIGN.md §14).
//
// The resilience layer's last line of defence: even with checksummed
// weights, a fault can corrupt activations or detector outputs between
// the engine and the navigator. This checker flags frames whose
// detector/depth outputs are physically implausible — non-finite or
// degenerate boxes, out-of-range scores, detection floods, non-finite
// depth, and detection-vs-depth disagreement (a large, near-looking
// detection while the depth map's matching sector reports clear road).
//
// Thresholds are deliberately generous: a clean pipeline must never
// trip them (the property tests in tests/test_vip.cpp randomise clean
// frames against exactly that claim), while NaN/Inf and degenerate
// outputs always do. check() is const, heap-free and per-frame cheap,
// so the streaming pipeline can run it on every frame.
#pragma once

#include <cstddef>
#include <vector>

#include "detect/box.hpp"
#include "image/image.hpp"
#include "vip/obstacle.hpp"

namespace ocb::vip {

/// Bitmask of independent plausibility violations for one frame.
enum PlausibilityFlag : unsigned {
  kPlausible = 0,
  kNonFiniteBox = 1u << 0,      ///< NaN/Inf box coordinate or score
  kDegenerateBox = 1u << 1,     ///< zero/negative/sub-pixel extent
  kScoreOutOfRange = 1u << 2,   ///< confidence outside [0, 1]
  kTooManyDetections = 1u << 3, ///< detection flood (corrupt NMS/head)
  kNonFiniteDepth = 1u << 4,    ///< NaN/Inf depth inside a detection box
  kDepthDisagreement = 1u << 5, ///< near-looking box, clear depth sector
};

struct PlausibilityConfig {
  /// Minimum believable box extent in pixels (both axes).
  float min_extent_px = 0.5f;
  /// More simultaneous detections than this is a flood.
  std::size_t max_detections = 64;
  /// A box taller than this fraction of the frame reads as "near".
  float near_height_frac = 0.5f;
  /// ...and disagrees with depth when its sector reports clear beyond
  /// this many metres.
  float cross_check_m = 8.0f;
  /// Horizontal sectors the readings were produced with.
  int sectors = 3;
};

struct FrameVerdict {
  unsigned flags = kPlausible;
  std::size_t suspect_boxes = 0;  ///< detections contributing any flag

  bool plausible() const noexcept { return flags == kPlausible; }
};

class PlausibilityChecker {
 public:
  explicit PlausibilityChecker(PlausibilityConfig config = {});

  /// Detector-only sanity: box finiteness, extents, scores, count.
  FrameVerdict check(const std::vector<Detection>& dets, float frame_w,
                     float frame_h) const;

  /// Full cross-check: detector sanity plus depth finiteness inside
  /// boxes and detection-vs-depth agreement against the obstacle
  /// detector's sector readings for the same frame.
  FrameVerdict check(const std::vector<Detection>& dets, const Image& depth,
                     const std::vector<SectorReading>& sectors) const;

  const PlausibilityConfig& config() const noexcept { return config_; }

 private:
  PlausibilityConfig config_;
};

}  // namespace ocb::vip
