// Depth-based obstacle detection.
//
// Consumes a metric depth map (Monodepth2's role in Ocularone) and
// reports the nearest obstacle per horizontal sector so the navigator
// can issue "obstacle left / ahead / right" guidance.
#pragma once

#include <string>
#include <vector>

#include "image/image.hpp"

namespace ocb::vip {

struct ObstacleConfig {
  int sectors = 3;            ///< left / centre / right by default
  float alert_distance_m = 2.0f;
  float ground_margin_m = 0.35f;  ///< ignore returns near the ground plane
  float roi_top = 0.3f;       ///< ignore sky (fraction of height)
  float vip_distance_m = 0.0f;    ///< VIP's own depth to mask out (0 = off)
};

struct SectorReading {
  int sector = 0;
  float nearest_m = 1e9f;
  bool alert = false;
};

class ObstacleDetector {
 public:
  explicit ObstacleDetector(ObstacleConfig config = {});

  /// Analyse a single-channel metric depth map.
  std::vector<SectorReading> analyse(const Image& depth) const;

  /// Human-readable direction of sector i ("left", "ahead", "right" for
  /// 3 sectors; "sector k" otherwise).
  std::string sector_name(int sector) const;

  const ObstacleConfig& config() const noexcept { return config_; }

 private:
  ObstacleConfig config_;
};

}  // namespace ocb::vip
