#include "image/image.hpp"

#include <algorithm>
#include <cmath>

namespace ocb {

Image::Image(int width, int height, int channels, float fill)
    : width_(width), height_(height), channels_(channels) {
  OCB_CHECK_MSG(width > 0 && height > 0 && channels > 0,
                "image dimensions must be positive");
  data_.assign(static_cast<std::size_t>(width) * height * channels, fill);
}

float* Image::plane(int c) {
  OCB_CHECK(c >= 0 && c < channels_);
  return data_.data() + static_cast<std::size_t>(c) * width_ * height_;
}

const float* Image::plane(int c) const {
  OCB_CHECK(c >= 0 && c < channels_);
  return data_.data() + static_cast<std::size_t>(c) * width_ * height_;
}

float& Image::at(int c, int y, int x) {
  OCB_CHECK_MSG(c >= 0 && c < channels_ && in_bounds(y, x),
                "image index out of range");
  return data_[(static_cast<std::size_t>(c) * height_ + y) * width_ + x];
}

float Image::at(int c, int y, int x) const {
  OCB_CHECK_MSG(c >= 0 && c < channels_ && in_bounds(y, x),
                "image index out of range");
  return data_[(static_cast<std::size_t>(c) * height_ + y) * width_ + x];
}

float Image::sample_clamped(int c, int y, int x) const noexcept {
  y = std::clamp(y, 0, height_ - 1);
  x = std::clamp(x, 0, width_ - 1);
  return data_[(static_cast<std::size_t>(c) * height_ + y) * width_ + x];
}

float Image::sample_bilinear(int c, float y, float x) const noexcept {
  const float yc = std::clamp(y, 0.0f, static_cast<float>(height_ - 1));
  const float xc = std::clamp(x, 0.0f, static_cast<float>(width_ - 1));
  const int y0 = static_cast<int>(yc);
  const int x0 = static_cast<int>(xc);
  const int y1 = std::min(y0 + 1, height_ - 1);
  const int x1 = std::min(x0 + 1, width_ - 1);
  const float fy = yc - static_cast<float>(y0);
  const float fx = xc - static_cast<float>(x0);
  const float v00 = sample_clamped(c, y0, x0);
  const float v01 = sample_clamped(c, y0, x1);
  const float v10 = sample_clamped(c, y1, x0);
  const float v11 = sample_clamped(c, y1, x1);
  const float top = v00 + (v01 - v00) * fx;
  const float bot = v10 + (v11 - v10) * fx;
  return top + (bot - top) * fy;
}

Color Image::pixel(int y, int x) const {
  OCB_CHECK_MSG(channels_ == 3, "pixel() requires an RGB image");
  return {at(0, y, x), at(1, y, x), at(2, y, x)};
}

void Image::set_pixel(int y, int x, const Color& color) {
  OCB_CHECK_MSG(channels_ == 3, "set_pixel() requires an RGB image");
  at(0, y, x) = color.r;
  at(1, y, x) = color.g;
  at(2, y, x) = color.b;
}

void Image::blend_pixel(int y, int x, const Color& color, float alpha) {
  if (!in_bounds(y, x)) return;
  const Color base = pixel(y, x);
  set_pixel(y, x, base.mixed(color, std::clamp(alpha, 0.0f, 1.0f)));
}

void Image::clamp01() noexcept {
  for (float& v : data_) v = std::clamp(v, 0.0f, 1.0f);
}

std::vector<std::uint8_t> to_u8_interleaved(const Image& image) {
  OCB_CHECK_MSG(!image.empty(), "export of empty image");
  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(image.width()) * image.height() *
      image.channels());
  std::size_t i = 0;
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x)
      for (int c = 0; c < image.channels(); ++c) {
        const float v = std::clamp(image.at(c, y, x), 0.0f, 1.0f);
        out[i++] = static_cast<std::uint8_t>(std::lround(v * 255.0f));
      }
  return out;
}

Image from_u8_interleaved(const std::uint8_t* rgb, int width, int height,
                          int channels) {
  OCB_CHECK_MSG(rgb != nullptr, "null pixel buffer");
  Image image(width, height, channels);
  std::size_t i = 0;
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      for (int c = 0; c < channels; ++c)
        image.at(c, y, x) = static_cast<float>(rgb[i++]) / 255.0f;
  return image;
}

}  // namespace ocb
