// Planar float image container.
//
// Images are stored channel-planar (CHW) with float values in [0, 1] —
// the same layout NN input tensors use, so dataset frames feed the
// inference engine without a repack. Drawing/transform routines live in
// draw.hpp / transform.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/error.hpp"

namespace ocb {

/// RGB color with components in [0, 1].
struct Color {
  float r = 0.0f, g = 0.0f, b = 0.0f;

  Color scaled(float k) const noexcept { return {r * k, g * k, b * k}; }
  Color mixed(const Color& other, float t) const noexcept {
    return {r + (other.r - r) * t, g + (other.g - g) * t,
            b + (other.b - b) * t};
  }
};

class Image {
 public:
  Image() = default;
  Image(int width, int height, int channels = 3, float fill = 0.0f);

  int width() const noexcept { return width_; }
  int height() const noexcept { return height_; }
  int channels() const noexcept { return channels_; }
  bool empty() const noexcept { return data_.empty(); }
  std::size_t size() const noexcept { return data_.size(); }

  float* data() noexcept { return data_.data(); }
  const float* data() const noexcept { return data_.data(); }
  float* plane(int c);
  const float* plane(int c) const;

  float& at(int c, int y, int x);
  float at(int c, int y, int x) const;

  /// Clamp-to-edge sample (integer coordinates).
  float sample_clamped(int c, int y, int x) const noexcept;
  /// Clamp-to-edge bilinear sample (continuous coordinates).
  float sample_bilinear(int c, float y, float x) const noexcept;

  /// Get/set an RGB pixel (requires channels() == 3).
  Color pixel(int y, int x) const;
  void set_pixel(int y, int x, const Color& color);
  /// Alpha-blend `color` over the pixel.
  void blend_pixel(int y, int x, const Color& color, float alpha);

  /// Clamp every value into [0, 1].
  void clamp01() noexcept;

  bool in_bounds(int y, int x) const noexcept {
    return y >= 0 && y < height_ && x >= 0 && x < width_;
  }

 private:
  int width_ = 0;
  int height_ = 0;
  int channels_ = 0;
  std::vector<float> data_;
};

/// Convert to interleaved 8-bit RGB (for PPM export).
std::vector<std::uint8_t> to_u8_interleaved(const Image& image);

/// Build an image from interleaved 8-bit RGB.
Image from_u8_interleaved(const std::uint8_t* rgb, int width, int height,
                          int channels = 3);

}  // namespace ocb
