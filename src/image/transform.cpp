#include "image/transform.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "parallel/parallel_for.hpp"

namespace ocb {

Image resize_bilinear(const Image& src, int out_width, int out_height) {
  OCB_CHECK_MSG(out_width > 0 && out_height > 0, "resize to empty image");
  Image dst(out_width, out_height, src.channels());
  const float sx = static_cast<float>(src.width()) / static_cast<float>(out_width);
  const float sy = static_cast<float>(src.height()) / static_cast<float>(out_height);
  parallel_rows(static_cast<std::size_t>(out_height), [&](std::size_t row) {
    const int y = static_cast<int>(row);
    const float fy = (static_cast<float>(y) + 0.5f) * sy - 0.5f;
    for (int x = 0; x < out_width; ++x) {
      const float fx = (static_cast<float>(x) + 0.5f) * sx - 0.5f;
      for (int c = 0; c < src.channels(); ++c)
        dst.at(c, y, x) = src.sample_bilinear(c, fy, fx);
    }
  });
  return dst;
}

namespace {
std::vector<float> gaussian_kernel(float sigma) {
  const int radius = std::max(1, static_cast<int>(std::ceil(3.0f * sigma)));
  std::vector<float> k(static_cast<std::size_t>(2 * radius + 1));
  float sum = 0.0f;
  for (int i = -radius; i <= radius; ++i) {
    const float v = std::exp(-0.5f * static_cast<float>(i * i) / (sigma * sigma));
    k[static_cast<std::size_t>(i + radius)] = v;
    sum += v;
  }
  for (float& v : k) v /= sum;
  return k;
}
}  // namespace

Image gaussian_blur(const Image& src, float sigma) {
  if (sigma <= 0.0f) return src;
  const auto kernel = gaussian_kernel(sigma);
  const int radius = static_cast<int>(kernel.size() / 2);

  Image tmp(src.width(), src.height(), src.channels());
  // Horizontal pass.
  parallel_rows(static_cast<std::size_t>(src.height()), [&](std::size_t row) {
    const int y = static_cast<int>(row);
    for (int c = 0; c < src.channels(); ++c)
      for (int x = 0; x < src.width(); ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i)
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 src.sample_clamped(c, y, x + i);
        tmp.at(c, y, x) = acc;
      }
  });
  // Vertical pass.
  Image dst(src.width(), src.height(), src.channels());
  parallel_rows(static_cast<std::size_t>(src.height()), [&](std::size_t row) {
    const int y = static_cast<int>(row);
    for (int c = 0; c < src.channels(); ++c)
      for (int x = 0; x < src.width(); ++x) {
        float acc = 0.0f;
        for (int i = -radius; i <= radius; ++i)
          acc += kernel[static_cast<std::size_t>(i + radius)] *
                 tmp.sample_clamped(c, y + i, x);
        dst.at(c, y, x) = acc;
      }
  });
  return dst;
}

Image adjust_brightness(const Image& src, float gain) {
  Image dst = src;
  for (std::size_t i = 0; i < dst.size(); ++i)
    dst.data()[i] = std::clamp(dst.data()[i] * gain, 0.0f, 1.0f);
  return dst;
}

Image adjust_contrast(const Image& src, float gain) {
  Image dst = src;
  for (std::size_t i = 0; i < dst.size(); ++i)
    dst.data()[i] = std::clamp((dst.data()[i] - 0.5f) * gain + 0.5f, 0.0f, 1.0f);
  return dst;
}

Image rotate(const Image& src, float degrees) {
  const float rad = degrees * std::numbers::pi_v<float> / 180.0f;
  const float cs = std::cos(rad);
  const float sn = std::sin(rad);
  const float cx = static_cast<float>(src.width() - 1) * 0.5f;
  const float cy = static_cast<float>(src.height() - 1) * 0.5f;
  Image dst(src.width(), src.height(), src.channels());
  parallel_rows(static_cast<std::size_t>(src.height()), [&](std::size_t row) {
    const int y = static_cast<int>(row);
    for (int x = 0; x < src.width(); ++x) {
      // Inverse mapping: rotate destination coords back into the source.
      const float dx = static_cast<float>(x) - cx;
      const float dy = static_cast<float>(y) - cy;
      const float sx = cs * dx + sn * dy + cx;
      const float sy = -sn * dx + cs * dy + cy;
      for (int c = 0; c < src.channels(); ++c)
        dst.at(c, y, x) = src.sample_bilinear(c, sy, sx);
    }
  });
  return dst;
}

Image crop(const Image& src, int x0, int y0, int w, int h) {
  const int cx0 = std::clamp(x0, 0, src.width() - 1);
  const int cy0 = std::clamp(y0, 0, src.height() - 1);
  const int cx1 = std::clamp(x0 + w, cx0 + 1, src.width());
  const int cy1 = std::clamp(y0 + h, cy0 + 1, src.height());
  Image dst(cx1 - cx0, cy1 - cy0, src.channels());
  for (int c = 0; c < src.channels(); ++c)
    for (int y = cy0; y < cy1; ++y)
      for (int x = cx0; x < cx1; ++x)
        dst.at(c, y - cy0, x - cx0) = src.at(c, y, x);
  return dst;
}

void add_gaussian_noise(Image& image, float stddev, Rng& rng) {
  for (std::size_t i = 0; i < image.size(); ++i) {
    const float noisy =
        image.data()[i] + static_cast<float>(rng.normal(0.0, stddev));
    image.data()[i] = std::clamp(noisy, 0.0f, 1.0f);
  }
}

void add_salt_pepper(Image& image, float p, Rng& rng) {
  const int pixels = image.width() * image.height();
  for (int i = 0; i < pixels; ++i) {
    if (!rng.bernoulli(p)) continue;
    const float v = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    const int y = i / image.width();
    const int x = i % image.width();
    for (int c = 0; c < image.channels(); ++c) image.at(c, y, x) = v;
  }
}

Image flip_horizontal(const Image& src) {
  Image dst(src.width(), src.height(), src.channels());
  for (int c = 0; c < src.channels(); ++c)
    for (int y = 0; y < src.height(); ++y)
      for (int x = 0; x < src.width(); ++x)
        dst.at(c, y, x) = src.at(c, y, src.width() - 1 - x);
  return dst;
}

Image motion_blur(const Image& src, float angle_degrees, int length) {
  if (length <= 1) return src;
  const float rad = angle_degrees * std::numbers::pi_v<float> / 180.0f;
  const float dx = std::cos(rad);
  const float dy = std::sin(rad);
  Image dst(src.width(), src.height(), src.channels());
  parallel_rows(static_cast<std::size_t>(src.height()), [&](std::size_t row) {
    const int y = static_cast<int>(row);
    for (int x = 0; x < src.width(); ++x)
      for (int c = 0; c < src.channels(); ++c) {
        float acc = 0.0f;
        for (int i = 0; i < length; ++i) {
          const float t = static_cast<float>(i) - static_cast<float>(length - 1) * 0.5f;
          acc += src.sample_bilinear(c, static_cast<float>(y) + dy * t,
                                     static_cast<float>(x) + dx * t);
        }
        dst.at(c, y, x) = acc / static_cast<float>(length);
      }
  });
  return dst;
}

}  // namespace ocb
