#include "image/color.hpp"

#include <algorithm>
#include <cmath>

namespace ocb {

Hsv rgb_to_hsv(const Color& rgb) noexcept {
  const float mx = std::max({rgb.r, rgb.g, rgb.b});
  const float mn = std::min({rgb.r, rgb.g, rgb.b});
  const float delta = mx - mn;
  Hsv out;
  out.v = mx;
  out.s = mx > 0.0f ? delta / mx : 0.0f;
  if (delta < 1e-6f) {
    out.h = 0.0f;
  } else if (mx == rgb.r) {
    out.h = 60.0f * std::fmod((rgb.g - rgb.b) / delta, 6.0f);
  } else if (mx == rgb.g) {
    out.h = 60.0f * ((rgb.b - rgb.r) / delta + 2.0f);
  } else {
    out.h = 60.0f * ((rgb.r - rgb.g) / delta + 4.0f);
  }
  if (out.h < 0.0f) out.h += 360.0f;
  return out;
}

Color hsv_to_rgb(const Hsv& hsv) noexcept {
  const float c = hsv.v * hsv.s;
  const float hp = hsv.h / 60.0f;
  const float x = c * (1.0f - std::fabs(std::fmod(hp, 2.0f) - 1.0f));
  float r = 0, g = 0, b = 0;
  if (hp < 1)      { r = c; g = x; }
  else if (hp < 2) { r = x; g = c; }
  else if (hp < 3) { g = c; b = x; }
  else if (hp < 4) { g = x; b = c; }
  else if (hp < 5) { r = x; b = c; }
  else             { r = c; b = x; }
  const float m = hsv.v - c;
  return {r + m, g + m, b + m};
}

float luminance(const Color& rgb) noexcept {
  return 0.2126f * rgb.r + 0.7152f * rgb.g + 0.0722f * rgb.b;
}

Color hazard_vest_color() noexcept {
  // Fluorescent yellow-green: hue ~75°, full saturation, high value.
  return hsv_to_rgb({75.0f, 0.95f, 1.0f});
}

Color vest_stripe_color() noexcept { return {0.82f, 0.82f, 0.85f}; }

}  // namespace ocb
