#include "image/draw.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ocb {

void fill_gradient_vertical(Image& image, const Color& top,
                            const Color& bottom) {
  const int h = image.height();
  for (int y = 0; y < h; ++y) {
    const float t = h > 1 ? static_cast<float>(y) / static_cast<float>(h - 1)
                          : 0.0f;
    const Color c = top.mixed(bottom, t);
    for (int x = 0; x < image.width(); ++x) image.set_pixel(y, x, c);
  }
}

void fill_rect(Image& image, int x0, int y0, int x1, int y1,
               const Color& color, float alpha) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, image.width());
  y1 = std::min(y1, image.height());
  for (int y = y0; y < y1; ++y)
    for (int x = x0; x < x1; ++x)
      if (alpha >= 1.0f)
        image.set_pixel(y, x, color);
      else
        image.blend_pixel(y, x, color, alpha);
}

void fill_disc(Image& image, float cx, float cy, float radius,
               const Color& color, float alpha) {
  fill_ellipse(image, cx, cy, radius, radius, color, alpha);
}

void fill_ellipse(Image& image, float cx, float cy, float rx, float ry,
                  const Color& color, float alpha) {
  if (rx <= 0.0f || ry <= 0.0f) return;
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - ry)));
  const int y1 = std::min(image.height() - 1, static_cast<int>(std::ceil(cy + ry)));
  const int x0 = std::max(0, static_cast<int>(std::floor(cx - rx)));
  const int x1 = std::min(image.width() - 1, static_cast<int>(std::ceil(cx + rx)));
  for (int y = y0; y <= y1; ++y)
    for (int x = x0; x <= x1; ++x) {
      const float dx = (static_cast<float>(x) - cx) / rx;
      const float dy = (static_cast<float>(y) - cy) / ry;
      if (dx * dx + dy * dy <= 1.0f) {
        if (alpha >= 1.0f)
          image.set_pixel(y, x, color);
        else
          image.blend_pixel(y, x, color, alpha);
      }
    }
}

void fill_polygon(Image& image, const std::vector<Point2>& points,
                  const Color& color, float alpha) {
  if (points.size() < 3) return;
  float miny = std::numeric_limits<float>::max();
  float maxy = std::numeric_limits<float>::lowest();
  for (const auto& p : points) {
    miny = std::min(miny, p.y);
    maxy = std::max(maxy, p.y);
  }
  const int y0 = std::max(0, static_cast<int>(std::floor(miny)));
  const int y1 = std::min(image.height() - 1, static_cast<int>(std::ceil(maxy)));

  std::vector<float> xs;
  for (int y = y0; y <= y1; ++y) {
    xs.clear();
    const float fy = static_cast<float>(y) + 0.5f;
    for (std::size_t i = 0, n = points.size(); i < n; ++i) {
      const Point2& a = points[i];
      const Point2& b = points[(i + 1) % n];
      // Half-open rule: count edges crossing the scanline once.
      if ((a.y <= fy && b.y > fy) || (b.y <= fy && a.y > fy)) {
        const float t = (fy - a.y) / (b.y - a.y);
        xs.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int xa = std::max(0, static_cast<int>(std::ceil(xs[i] - 0.5f)));
      const int xb = std::min(image.width() - 1,
                              static_cast<int>(std::floor(xs[i + 1] - 0.5f)));
      for (int x = xa; x <= xb; ++x) {
        if (alpha >= 1.0f)
          image.set_pixel(y, x, color);
        else
          image.blend_pixel(y, x, color, alpha);
      }
    }
  }
}

void draw_line(Image& image, float x0, float y0, float x1, float y1,
               const Color& color, float thickness, float alpha) {
  const float dx = x1 - x0;
  const float dy = y1 - y0;
  const float len = std::sqrt(dx * dx + dy * dy);
  if (len < 1e-6f) {
    fill_disc(image, x0, y0, thickness * 0.5f, color, alpha);
    return;
  }
  // Draw as a rotated rectangle (quad) plus rounded caps.
  const float nx = -dy / len * thickness * 0.5f;
  const float ny = dx / len * thickness * 0.5f;
  fill_polygon(image,
               {{x0 + nx, y0 + ny},
                {x1 + nx, y1 + ny},
                {x1 - nx, y1 - ny},
                {x0 - nx, y0 - ny}},
               color, alpha);
  fill_disc(image, x0, y0, thickness * 0.5f, color, alpha);
  fill_disc(image, x1, y1, thickness * 0.5f, color, alpha);
}

void stroke_rect(Image& image, int x0, int y0, int x1, int y1,
                 const Color& color, int thickness) {
  fill_rect(image, x0, y0, x1, y0 + thickness, color);
  fill_rect(image, x0, y1 - thickness, x1, y1, color);
  fill_rect(image, x0, y0, x0 + thickness, y1, color);
  fill_rect(image, x1 - thickness, y0, x1, y1, color);
}

}  // namespace ocb
