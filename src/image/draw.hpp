// 2D drawing primitives used by the procedural scene renderer.
#pragma once

#include <vector>

#include "image/image.hpp"

namespace ocb {

struct Point2 {
  float x = 0.0f, y = 0.0f;
};

/// Fill the whole image with a vertical gradient (top → bottom).
void fill_gradient_vertical(Image& image, const Color& top,
                            const Color& bottom);

/// Fill an axis-aligned rectangle [x0,x1)×[y0,y1), clipped to the image.
void fill_rect(Image& image, int x0, int y0, int x1, int y1,
               const Color& color, float alpha = 1.0f);

/// Fill a solid disc, clipped.
void fill_disc(Image& image, float cx, float cy, float radius,
               const Color& color, float alpha = 1.0f);

/// Fill an ellipse with independent radii.
void fill_ellipse(Image& image, float cx, float cy, float rx, float ry,
                  const Color& color, float alpha = 1.0f);

/// Fill a convex or concave simple polygon (even-odd scanline).
void fill_polygon(Image& image, const std::vector<Point2>& points,
                  const Color& color, float alpha = 1.0f);

/// Draw a line of the given thickness.
void draw_line(Image& image, float x0, float y0, float x1, float y1,
               const Color& color, float thickness = 1.0f,
               float alpha = 1.0f);

/// Stroke an axis-aligned rectangle outline (used to visualise boxes).
void stroke_rect(Image& image, int x0, int y0, int x1, int y1,
                 const Color& color, int thickness = 1);

}  // namespace ocb
