// Minimal netpbm I/O (binary P6/P5) for dataset export and debugging.
#pragma once

#include <string>

#include "image/image.hpp"

namespace ocb {

/// Write an RGB image as binary PPM (P6). Throws IoError on failure.
void write_ppm(const Image& image, const std::string& path);

/// Write a single-channel image as binary PGM (P5); multi-channel inputs
/// are converted to luminance first.
void write_pgm(const Image& image, const std::string& path);

/// Read a binary PPM (P6) back into a float image.
Image read_ppm(const std::string& path);

}  // namespace ocb
