// Color-space conversions.
//
// The scene renderer keys the hazard vest on a high-chroma hue band;
// HSV round-trips are also used by tests as invariants.
#pragma once

#include "image/image.hpp"

namespace ocb {

struct Hsv {
  float h = 0.0f;  ///< hue in degrees [0, 360)
  float s = 0.0f;  ///< saturation [0, 1]
  float v = 0.0f;  ///< value [0, 1]
};

Hsv rgb_to_hsv(const Color& rgb) noexcept;
Color hsv_to_rgb(const Hsv& hsv) noexcept;

/// Relative luminance (Rec. 709 weights).
float luminance(const Color& rgb) noexcept;

/// Neon "safety-yellow/green" used by hazard vests (EN ISO 20471 hue).
Color hazard_vest_color() noexcept;
/// Reflective grey stripe color on the vest.
Color vest_stripe_color() noexcept;

}  // namespace ocb
