// Image transforms: geometric, photometric and noise.
//
// These implement both the dataset pipeline (resize to model input) and
// the paper's adversarial conditions — low light, blur, cropping and
// tilted orientations (§2, Table 1 row 5).
#pragma once

#include "core/rng.hpp"
#include "image/image.hpp"

namespace ocb {

/// Bilinear resize to the target size.
Image resize_bilinear(const Image& src, int out_width, int out_height);

/// Separable Gaussian blur; sigma <= 0 returns a copy.
Image gaussian_blur(const Image& src, float sigma);

/// Scale brightness (gain < 1 darkens — the paper's "low light").
Image adjust_brightness(const Image& src, float gain);

/// Contrast about mid-grey: out = (in - 0.5) * gain + 0.5.
Image adjust_contrast(const Image& src, float gain);

/// Rotate about the image centre by `degrees` (bilinear, edge-clamped)
/// — the paper's "tilted orientations".
Image rotate(const Image& src, float degrees);

/// Crop the window [x0, x0+w)×[y0, y0+h); the window is clipped to the
/// image and must retain a positive area.
Image crop(const Image& src, int x0, int y0, int w, int h);

/// Per-pixel additive Gaussian noise with the given stddev.
void add_gaussian_noise(Image& image, float stddev, Rng& rng);

/// Salt-and-pepper noise: each pixel flips to 0 or 1 with probability p.
void add_salt_pepper(Image& image, float p, Rng& rng);

/// Horizontal flip (augmentation).
Image flip_horizontal(const Image& src);

/// Simulated motion blur: average along a direction over `length` px.
Image motion_blur(const Image& src, float angle_degrees, int length);

}  // namespace ocb
