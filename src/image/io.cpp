#include "image/io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "image/color.hpp"

namespace ocb {

void write_ppm(const Image& image, const std::string& path) {
  OCB_CHECK_MSG(image.channels() == 3, "write_ppm requires RGB");
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << "P6\n" << image.width() << ' ' << image.height() << "\n255\n";
  const auto bytes = to_u8_interleaved(image);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("short write: " + path);
}

void write_pgm(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open for writing: " + path);
  out << "P5\n" << image.width() << ' ' << image.height() << "\n255\n";
  std::vector<std::uint8_t> bytes;
  bytes.reserve(static_cast<std::size_t>(image.width()) * image.height());
  for (int y = 0; y < image.height(); ++y)
    for (int x = 0; x < image.width(); ++x) {
      float v;
      if (image.channels() >= 3)
        v = luminance(image.pixel(y, x));
      else
        v = image.at(0, y, x);
      bytes.push_back(static_cast<std::uint8_t>(
          std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f)));
    }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw IoError("short write: " + path);
}

Image read_ppm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open for reading: " + path);
  std::string magic;
  in >> magic;
  if (magic != "P6") throw IoError("not a binary PPM: " + path);
  int width = 0, height = 0, maxval = 0;
  // Skip comments between header tokens.
  auto next_int = [&](int& value) {
    while (in >> std::ws && in.peek() == '#') {
      std::string comment;
      std::getline(in, comment);
    }
    in >> value;
  };
  next_int(width);
  next_int(height);
  next_int(maxval);
  if (!in || width <= 0 || height <= 0 || maxval != 255)
    throw IoError("bad PPM header: " + path);
  in.get();  // single whitespace after maxval
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(width) * height * 3);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (!in) throw IoError("short read: " + path);
  return from_u8_interleaved(bytes.data(), width, height, 3);
}

}  // namespace ocb
