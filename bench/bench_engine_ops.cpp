// Micro-benchmarks of the engine substrate (google-benchmark).
//
// Quantifies the design decisions in DESIGN.md: blocked vs naive GEMM,
// im2col-lowered convolution, NMS, and the renderer's hot paths.
#include <benchmark/benchmark.h>

#include "dataset/render.hpp"
#include "detect/nms.hpp"
#include "image/transform.hpp"
#include "nn/ops.hpp"
#include "tensor/gemm.hpp"

namespace ocb {
namespace {

void BM_GemmBlocked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (float& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    gemm(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<float> a(n * n), b(n * n), c(n * n);
  for (float& v : a) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : b) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    gemm_naive(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256);

void BM_Conv3x3Im2col(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const int hw = 32;
  const ConvGeometry geom{c, hw, hw, 3, 3, 1, 1};
  Rng rng(2);
  std::vector<float> input(static_cast<std::size_t>(c) * hw * hw);
  std::vector<float> weight(static_cast<std::size_t>(c) * c * 9);
  std::vector<float> bias(static_cast<std::size_t>(c));
  std::vector<float> output(static_cast<std::size_t>(c) * hw * hw);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : weight) v = static_cast<float>(rng.uniform(-1, 1));
  nn::ConvScratch scratch;
  for (auto _ : state) {
    nn::conv2d(input.data(), geom, c, weight.data(), bias.data(),
               nn::Act::kSilu, output.data(), scratch);
    benchmark::DoNotOptimize(output.data());
  }
}
BENCHMARK(BM_Conv3x3Im2col)->Arg(16)->Arg(32)->Arg(64);

void BM_DepthwiseConv(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  const int hw = 32;
  const ConvGeometry geom{c, hw, hw, 3, 3, 1, 1};
  Rng rng(3);
  std::vector<float> input(static_cast<std::size_t>(c) * hw * hw);
  std::vector<float> weight(static_cast<std::size_t>(c) * 9);
  std::vector<float> bias(static_cast<std::size_t>(c));
  std::vector<float> output(static_cast<std::size_t>(c) * hw * hw);
  for (float& v : input) v = static_cast<float>(rng.uniform(-1, 1));
  for (float& v : weight) v = static_cast<float>(rng.uniform(-1, 1));
  for (auto _ : state) {
    nn::dwconv2d(input.data(), geom, weight.data(), bias.data(),
                 nn::Act::kNone, output.data());
    benchmark::DoNotOptimize(output.data());
  }
}
BENCHMARK(BM_DepthwiseConv)->Arg(16)->Arg(64);

void BM_Nms(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  std::vector<Detection> dets;
  for (int i = 0; i < n; ++i) {
    Detection d;
    const float x = static_cast<float>(rng.uniform(0, 600));
    const float y = static_cast<float>(rng.uniform(0, 400));
    d.box = {x, y, x + 40, y + 60};
    d.confidence = static_cast<float>(rng.uniform(0.1, 1.0));
    dets.push_back(d);
  }
  for (auto _ : state) {
    auto kept = nms(dets, 0.5f);
    benchmark::DoNotOptimize(kept.data());
  }
}
BENCHMARK(BM_Nms)->Arg(64)->Arg(512);

void BM_RenderScene(benchmark::State& state) {
  Rng scene_rng(5);
  const dataset::SceneSpec spec =
      dataset::sample_scene(dataset::Category::kMixed, scene_rng);
  Rng rng(6);
  const int w = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto frame = dataset::render_scene(spec, w, w * 3 / 4, rng);
    benchmark::DoNotOptimize(frame.image.data());
  }
}
BENCHMARK(BM_RenderScene)->Arg(128)->Arg(256);

void BM_GaussianBlur(benchmark::State& state) {
  Image img(static_cast<int>(state.range(0)),
            static_cast<int>(state.range(0)), 3, 0.5f);
  for (auto _ : state) {
    Image out = gaussian_blur(img, 1.5f);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_GaussianBlur)->Arg(128)->Arg(256);

void BM_ResizeBilinear(benchmark::State& state) {
  Image img(512, 384, 3, 0.5f);
  const int target = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Image out = resize_bilinear(img, target, target);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ResizeBilinear)->Arg(64)->Arg(256);

}  // namespace
}  // namespace ocb
