// Fig 4 — accuracy of the six re-trained YOLO variants on the
// adversarial test set (low light, blur, crops, tilt, noise).
//
// Paper: accuracy *increases with model size* here — nano is weakest,
// x-large peaks (99.11% for v11, 98.11% for v8) — unlike the diverse
// set where size barely matters.
#include "bench_accuracy_common.hpp"

using namespace ocb;

namespace {
double paper_adversarial(models::YoloFamily family, models::YoloSize size) {
  using enum models::YoloSize;
  if (family == models::YoloFamily::kV8)
    return size == kNano ? 95.4 : size == kMedium ? 97.4 : 98.11;
  return size == kNano ? 95.9 : size == kMedium ? 98.3 : 99.11;
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig4_adversarial",
          "Reproduce Fig 4: RT YOLO accuracy on the adversarial test set");
  bench::add_accuracy_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const auto config = bench::accuracy_config(cli);
  OCB_INFO << "training 6 detector variants (this takes a few minutes)...";
  const auto results = trainer::run_size_sweep(config);

  ResultTable table("Fig 4: accuracy on adversarial dataset",
                    {"model", "params", "precision %", "recall %",
                     "accuracy %", "paper ~%"});
  for (const auto& r : results)
    table.row()
        .cell(bench::variant_name(r.family, r.size))
        .cell(r.params)
        .cell(r.adversarial.precision * 100.0, 2)
        .cell(r.adversarial.recall * 100.0, 2)
        .cell(r.adversarial.accuracy * 100.0, 2)
        .cell(paper_adversarial(r.family, r.size), 2);

  // Shape check from §4.2.2: nano weakest within each family.
  ResultTable verdict("Fig 4 shape checks", {"claim", "holds"});
  for (auto family : {models::YoloFamily::kV8, models::YoloFamily::kV11}) {
    double nano = 0.0, best_big = 0.0;
    for (const auto& r : results) {
      if (r.family != family) continue;
      if (r.size == models::YoloSize::kNano)
        nano = r.adversarial.accuracy;
      else
        best_big = std::max(best_big, r.adversarial.accuracy);
    }
    verdict.row()
        .cell(std::string(models::yolo_family_name(family)) +
              ": larger beats nano on adversarial data")
        .cell(best_big >= nano ? "yes" : "NO");
  }
  bench::emit(cli, {table, verdict});
  return 0;
}
