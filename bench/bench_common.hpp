// Shared plumbing for the bench binaries: CLI wiring and table output.
#pragma once

#include <iostream>
#include <vector>

#include "core/cli.hpp"
#include "core/log.hpp"
#include "core/table.hpp"

namespace ocb::bench {

/// Print tables as text (default) or markdown (--markdown), with an
/// optional CSV dump (--csv).
inline void emit(const Cli& cli, const std::vector<ResultTable>& tables) {
  for (const ResultTable& table : tables) {
    if (cli.flag("markdown"))
      std::cout << table.to_markdown() << '\n';
    else
      std::cout << table.to_text() << '\n';
    if (cli.flag("csv")) std::cout << table.to_csv() << '\n';
  }
}

/// Register the output flags every bench shares.
inline void add_common_flags(Cli& cli) {
  cli.add_flag("markdown", "emit GitHub-flavoured markdown tables");
  cli.add_flag("csv", "additionally emit CSV");
  cli.add_flag("quiet", "suppress informational logging");
}

inline void apply_common_flags(const Cli& cli) {
  if (cli.flag("quiet")) set_log_level(LogLevel::kError);
}

}  // namespace ocb::bench
