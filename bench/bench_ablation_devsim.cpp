// Device-simulator ablation (DESIGN.md decision 3).
//
// Sensitivity of the simulated latencies to the roofline knobs:
// precision (FP32 vs FP16/TensorRT), batch size, and the per-op
// efficiency refinement vs a naive flat-efficiency roofline.
#include <algorithm>

#include "bench_common.hpp"
#include "devsim/simulator.hpp"
#include "models/registry.hpp"

using namespace ocb;
using namespace ocb::devsim;
using namespace ocb::models;

namespace {
/// Flat-roofline baseline: every op gets conv-grade efficiency.
double flat_model_latency_ms(const nn::ModelProfile& profile,
                             const DeviceSpec& device) {
  double total = device.frame_overhead_ms;
  for (const auto& layer : profile.layers) {
    if (layer.kind == nn::OpKind::kInput) continue;
    const double compute_s = layer.flops / (device.eff_gflops * 1e9);
    const double bytes = static_cast<double>(layer.in_bytes +
                                             layer.out_bytes +
                                             layer.weight_bytes);
    const double memory_s = bytes / (device.eff_bw_gbps * 1e9);
    total += (std::max(compute_s, memory_s) +
              device.kernel_overhead_us * 1e-6) *
             1e3;
  }
  return total;
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_ablation_devsim",
          "Ablate the roofline simulator's modelling choices");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const std::vector<ModelId> models = {ModelId::kYoloV8n, ModelId::kYoloV8x,
                                       ModelId::kTrtPose,
                                       ModelId::kMonodepth2};

  // 1) per-op efficiency vs flat roofline.
  ResultTable eff("Ablation: per-op efficiency vs flat roofline (Orin AGX, "
                  "ms/frame)",
                  {"model", "per-op (default)", "flat", "delta %"});
  const DeviceSpec& agx = device_spec(DeviceId::kOrinAgx);
  for (ModelId id : models) {
    const auto profile = profile_model(id);
    const double with = model_latency_ms(profile, agx);
    const double flat = flat_model_latency_ms(profile, agx);
    eff.row()
        .cell(model_info(id).name)
        .cell(with, 1)
        .cell(flat, 1)
        .cell((with - flat) / flat * 100.0, 1);
  }

  // 2) precision speedup (the TensorRT/FP16 deployment the Jetsons
  //    support but the paper's PyTorch FP32 setup does not use).
  //    "fp16 store" is the engine's own half-storage format (halved
  //    weight traffic, calibrated widening derate, per-layer dense
  //    fallback); "fp16 (2x)" is the generic TensorRT-style knob.
  ResultTable precision(
      "Ablation: FP32 vs FP16 execution (ms/frame)",
      {"model", "device", "fp32", "fp16 store", "fp16 (2x)", "speedup"});
  for (ModelId id : {ModelId::kYoloV8x, ModelId::kYoloV11x}) {
    const auto profile = profile_model(id);
    for (DeviceId dev_id : {DeviceId::kXavierNx, DeviceId::kRtx4090}) {
      const DeviceSpec& dev = device_spec(dev_id);
      RooflineOptions fp16_store;
      fp16_store.precision = Precision::kFp16;
      RooflineOptions fp16;
      fp16.precision_speedup = 2.0;
      const double fp32_ms = model_latency_ms(profile, dev);
      const double store_ms = model_latency_ms(profile, dev, fp16_store);
      const double fp16_ms = model_latency_ms(profile, dev, fp16);
      precision.row()
          .cell(model_info(id).name)
          .cell(dev.short_name)
          .cell(fp32_ms, 1)
          .cell(store_ms, 1)
          .cell(fp16_ms, 1)
          .cell(fp32_ms / fp16_ms, 2);
    }
  }

  // 3) batching: overhead amortisation on the workstation.
  ResultTable batching("Ablation: batch size vs per-frame latency "
                       "(RTX 4090, YOLOv8-n)",
                       {"batch", "ms/frame", "throughput fps"});
  const auto v8n = profile_model(ModelId::kYoloV8n);
  const DeviceSpec& gpu = device_spec(DeviceId::kRtx4090);
  for (int batch : {1, 2, 4, 8, 16, 32}) {
    RooflineOptions options;
    options.batch = batch;
    options.include_frame_overhead = false;
    const double ms = model_latency_ms(v8n, gpu, options);
    batching.row()
        .cell(static_cast<std::int64_t>(batch))
        .cell(ms, 3)
        .cell(1000.0 / ms, 0);
  }

  bench::emit(cli, {eff, precision, batching});
  return 0;
}
