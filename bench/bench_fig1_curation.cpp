// Fig 1 — the effect of dataset curation.
//
// Paper: YOLOv11-m retrained on 1k *random* images reaches 93%
// precision; retrained on 3.8k *curated* (per-category stratified)
// images it reaches 99.5%. This bench trains the v11-m detector under
// both regimes (the curated set is ~3.8× larger, as in the paper) and
// evaluates on the same held-out diverse pool.
#include "bench_accuracy_common.hpp"

using namespace ocb;

int main(int argc, char** argv) {
  Cli cli("bench_fig1_curation",
          "Reproduce Fig 1: random-1k vs curated-3.8k training");
  bench::add_accuracy_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const trainer::AccuracyExperimentConfig config =
      bench::accuracy_config(cli);
  OCB_INFO << "training YOLOv11-m twice (random vs curated sample)...";
  const trainer::CurationResult result =
      trainer::run_curation_experiment(config);

  ResultTable table("Fig 1: YOLOv11-m precision vs training-set curation",
                    {"training set", "images", "precision %", "recall %",
                     "accuracy %", "paper precision %"});
  table.row()
      .cell("random sample")
      .cell(result.random_images)
      .cell(result.random_small.precision * 100.0, 2)
      .cell(result.random_small.recall * 100.0, 2)
      .cell(result.random_small.accuracy * 100.0, 2)
      .cell("93.0");
  table.row()
      .cell("curated (stratified)")
      .cell(result.curated_images)
      .cell(result.curated_large.precision * 100.0, 2)
      .cell(result.curated_large.recall * 100.0, 2)
      .cell(result.curated_large.accuracy * 100.0, 2)
      .cell("99.5");

  ResultTable verdict("Fig 1 shape check", {"claim", "holds"});
  verdict.row()
      .cell("curated training beats random training")
      .cell(result.curated_large.precision > result.random_small.precision
                ? "yes"
                : "NO");
  bench::emit(cli, {table, verdict});
  return 0;
}
