// Kernel-planner benchmark: measured per-layer latency of the planner's
// chosen conv implementation vs the always-im2col baseline.
//
// Walks the conv layers of MiniYolo detector graphs (a small-input nano
// and the 3×3-heavy x-large trunk at 256×256), plans each layer with
// the default cost model, then *measures* every applicable candidate so
// the table shows both what the planner predicted and what the machine
// delivered. A whole-model section runs the planned engine against a
// legacy (pre-planner, im2col-everywhere) engine and reports the frame
// speedup plus the maximum output divergence.
//
// Emits BENCH_planner.json (top-level "bench": "planner") consumed by
// scripts/check_bench_regression.py --mode planner in CI: the planner
// must put at least one trunk stage on Winograd with a >= 1.5× measured
// layer speedup, and no chosen path may measure slower than im2col.
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "models/mini_yolo.hpp"
#include "nn/engine.hpp"
#include "nn/ops.hpp"
#include "nn/planner.hpp"
#include "tensor/simd.hpp"
#include "tensor/winograd.hpp"

using namespace ocb;

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double best_seconds(F&& body, double min_seconds) {
  double best = 1e300;
  double total = 0.0;
  int iters = 0;
  while (total < min_seconds || iters < 2) {
    const auto t0 = Clock::now();
    body();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, dt);
    total += dt;
    ++iters;
  }
  return best;
}

struct LayerResult {
  std::string label;
  nn::ConvPlanKey key;
  nn::ConvPlan plan;                 ///< planner decision + estimates
  double im2col_ms = 0.0;            ///< measured baseline path
  double chosen_ms = 0.0;            ///< measured planner-chosen path
  double speedup() const noexcept {
    return chosen_ms > 0.0 ? im2col_ms / chosen_ms : 0.0;
  }
  double est_speedup() const noexcept {
    return plan.est_ms > 0.0 ? plan.est_im2col_ms / plan.est_ms : 0.0;
  }
};

/// Measure one conv layer through `algo` (panels/weights prepacked
/// outside the timed region, exactly like the engine's steady state).
double measure_algo(const nn::ConvPlanKey& key, nn::ConvAlgo algo,
                    double min_seconds) {
  const ConvGeometry geom = key.geometry();
  Rng rng(23);
  Tensor input({1, key.in_c, key.in_h, key.in_w});
  input.init_uniform(rng, -1.0f, 1.0f);
  Tensor weight({key.out_c, key.in_c, key.kernel, key.kernel});
  weight.init_uniform(rng, -0.5f, 0.5f);
  std::vector<float> bias(static_cast<std::size_t>(key.out_c), 0.1f);
  Tensor output({1, key.out_c, geom.out_h(), geom.out_w()});

  nn::ConvScratch scratch;
  const nn::Act act = nn::Act::kLeakyRelu;
  switch (algo) {
    case nn::ConvAlgo::kIm2colGemm: {
      PackedA packed(weight.data(), static_cast<std::size_t>(key.out_c),
                     geom.col_rows());
      return best_seconds(
                 [&] {
                   nn::conv2d(input.data(), geom, packed, bias.data(), act,
                              output.data(), scratch);
                 },
                 min_seconds) *
             1e3;
    }
    case nn::ConvAlgo::kDirectGemm: {
      PackedA packed(weight.data(), static_cast<std::size_t>(key.out_c),
                     geom.col_rows());
      return best_seconds(
                 [&] {
                   nn::conv2d_direct1x1(input.data(), input.numel(), 1, geom,
                                        packed, bias.data(), act,
                                        output.data(), output.numel());
                 },
                 min_seconds) *
             1e3;
    }
    case nn::ConvAlgo::kWinograd: {
      std::vector<PackedA> panels;
      winograd::pack_weights(weight.data(), key.out_c, key.in_c, panels);
      return best_seconds(
                 [&] {
                   nn::conv2d_winograd(input.data(), input.numel(), 1, geom,
                                       panels, bias.data(), act,
                                       output.data(), output.numel(),
                                       scratch);
                 },
                 min_seconds) *
             1e3;
    }
    case nn::ConvAlgo::kIm2colFused: {
      PackedA packed(weight.data(), static_cast<std::size_t>(key.out_c),
                     geom.col_rows());
      return best_seconds(
                 [&] {
                   nn::conv2d_fused(input.data(), input.numel(), 1, geom,
                                    packed, bias.data(), act, output.data(),
                                    output.numel(), scratch);
                 },
                 min_seconds) *
             1e3;
    }
    case nn::ConvAlgo::kIm2colQuant:
    case nn::ConvAlgo::kIm2colQuantFused:
      break;  // fp32 bench; the quantized path has its own sweep
  }
  return 0.0;
}

/// Conv layers of `graph`, deduplicated by plan key.
std::vector<LayerResult> collect_layers(const nn::Graph& graph,
                                        const std::string& model_tag) {
  std::vector<LayerResult> layers;
  for (int i = 0; i < graph.node_count(); ++i) {
    const nn::Node& nd = graph.node(i);
    if (nd.kind != nn::OpKind::kConv) continue;
    const nn::FeatShape s = graph.shape(nd.inputs[0]);
    nn::ConvPlanKey key;
    key.in_c = s.c;
    key.in_h = s.h;
    key.in_w = s.w;
    key.kernel = nd.kernel;
    key.stride = nd.stride;
    key.pad = nd.pad;
    key.out_c = nd.out_c;
    key.batch = 1;
    key.precision = nn::Precision::kFp32;
    key.level = simd::active();
    bool seen = false;
    for (const LayerResult& prior : layers) seen = seen || prior.key == key;
    if (seen) continue;
    LayerResult layer;
    layer.label = model_tag + "/" + nd.name;
    layer.key = key;
    layers.push_back(layer);
  }
  return layers;
}

struct ModelResult {
  std::string name;
  double legacy_ns_frame = 0.0;   ///< pre-planner engine (im2col only)
  double planned_ns_frame = 0.0;  ///< Engine::prepare() default request
  double max_abs_diff = 0.0;      ///< planned vs legacy output divergence
  int winograd_nodes = 0;
  int direct_nodes = 0;
  double speedup() const noexcept {
    return planned_ns_frame > 0.0 ? legacy_ns_frame / planned_ns_frame : 0.0;
  }
};

ModelResult bench_model(const nn::Graph& graph, const std::string& name,
                        double min_seconds) {
  nn::Engine legacy(graph, 1);   // constructor plan: im2col everywhere
  nn::Engine planned(graph, 1);  // same weights (same seed), planner on
  const nn::ExecutionPlan& plan = planned.prepare({});

  const nn::FeatShape in = graph.input_shape();
  Tensor input({1, in.c, in.h, in.w});
  Rng rng(3);
  input.init_uniform(rng, 0.0f, 1.0f);

  ModelResult result;
  result.name = name;
  result.winograd_nodes = plan.winograd_nodes;
  result.direct_nodes = plan.direct_nodes;

  const auto ref = legacy.run(input);  // also warms both engines
  const auto got = planned.run(input);
  for (std::size_t o = 0; o < ref.size(); ++o)
    for (std::size_t i = 0; i < ref[o].numel(); ++i)
      result.max_abs_diff = std::max(
          result.max_abs_diff,
          static_cast<double>(std::fabs(ref[o][i] - got[o][i])));

  result.legacy_ns_frame =
      best_seconds([&] { legacy.run(input); }, min_seconds) * 1e9;
  result.planned_ns_frame =
      best_seconds([&] { planned.run(input); }, min_seconds) * 1e9;
  return result;
}

std::string to_json(const std::vector<LayerResult>& layers,
                    const std::vector<ModelResult>& model_results) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"planner\",\n";
  out << "  \"simd\": \"" << simd::level_name(simd::active()) << "\",\n";
  out << "  \"layers\": [\n";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerResult& l = layers[i];
    out << "    {\"label\": \"" << l.label << "\", \"in_c\": " << l.key.in_c
        << ", \"h\": " << l.key.in_h << ", \"w\": " << l.key.in_w
        << ", \"out_c\": " << l.key.out_c << ", \"kernel\": " << l.key.kernel
        << ", \"stride\": " << l.key.stride
        << ", \"chosen\": \"" << nn::conv_algo_name(l.plan.algo) << "\""
        << ", \"est_ms\": " << l.plan.est_ms
        << ", \"est_im2col_ms\": " << l.plan.est_im2col_ms
        << ", \"est_speedup\": " << l.est_speedup()
        << ", \"im2col_ms\": " << l.im2col_ms
        << ", \"chosen_ms\": " << l.chosen_ms
        << ", \"speedup\": " << l.speedup() << "}"
        << (i + 1 < layers.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"models\": [\n";
  for (std::size_t i = 0; i < model_results.size(); ++i) {
    const ModelResult& m = model_results[i];
    out << "    {\"name\": \"" << m.name
        << "\", \"legacy_ns_frame\": " << m.legacy_ns_frame
        << ", \"planned_ns_frame\": " << m.planned_ns_frame
        << ", \"speedup\": " << m.speedup()
        << ", \"winograd_nodes\": " << m.winograd_nodes
        << ", \"direct_nodes\": " << m.direct_nodes
        << ", \"max_abs_diff\": " << m.max_abs_diff << "}"
        << (i + 1 < model_results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_conv_planner",
          "cost-model kernel planner: chosen conv paths vs always-im2col");
  bench::add_common_flags(cli);
  cli.add_double("min-seconds", 0.2,
                 "minimum sampling time per measurement point");
  cli.add_string("out", "BENCH_planner.json",
                 "machine-readable output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);
  const double min_seconds = cli.real("min-seconds");

  // The Ocularone detector family the planner serves: the nano at its
  // native 64×64 (small planes — most layers should *stay* on im2col)
  // and the v11 x-large trunk at 256×256, whose 56-channel 3×3 refine
  // stages are the Winograd case.
  struct Variant {
    models::YoloFamily family;
    models::YoloSize size;
    models::MiniYoloConfig config;
    const char* tag;
  };
  const std::vector<Variant> variants = {
      {models::YoloFamily::kV8, models::YoloSize::kNano, {64, 8, 0.6f},
       "mini-v8n/64"},
      {models::YoloFamily::kV11, models::YoloSize::kXLarge, {256, 32, 0.6f},
       "mini-v11x/256"},
  };

  std::vector<LayerResult> layers;
  std::vector<ModelResult> model_results;
  for (const Variant& v : variants) {
    const models::MiniYolo model(v.family, v.size, v.config, 1);
    const nn::Graph graph = model.export_graph();
    for (LayerResult& layer : collect_layers(graph, v.tag))
      layers.push_back(layer);
    model_results.push_back(bench_model(graph, v.tag, min_seconds));
  }

  ResultTable layer_table(
      std::string("Planner-chosen conv path vs im2col (simd: ") +
          simd::level_name(simd::active()) + ")",
      {"layer", "shape", "k", "chosen", "est ms", "est im2col", "meas ms",
       "meas im2col", "speedup"});
  for (LayerResult& layer : layers) {
    layer.plan = nn::plan_conv(layer.key);
    layer.im2col_ms =
        measure_algo(layer.key, nn::ConvAlgo::kIm2colGemm, min_seconds);
    layer.chosen_ms = layer.plan.algo == nn::ConvAlgo::kIm2colGemm
                          ? layer.im2col_ms
                          : measure_algo(layer.key, layer.plan.algo,
                                         min_seconds);
    std::ostringstream shape;
    shape << layer.key.in_c << "x" << layer.key.in_h << "x" << layer.key.in_w
          << "->" << layer.key.out_c;
    layer_table.row()
        .cell(layer.label)
        .cell(shape.str())
        .cell(static_cast<double>(layer.key.kernel), 0)
        .cell(nn::conv_algo_name(layer.plan.algo))
        .cell(layer.plan.est_ms, 4)
        .cell(layer.plan.est_im2col_ms, 4)
        .cell(layer.chosen_ms, 4)
        .cell(layer.im2col_ms, 4)
        .cell(layer.speedup(), 2);
  }

  ResultTable model_table(
      "Whole model: planned engine vs legacy im2col engine",
      {"model", "legacy ms", "planned ms", "speedup", "wino", "direct",
       "max |diff|"});
  for (const ModelResult& m : model_results) {
    model_table.row()
        .cell(m.name)
        .cell(m.legacy_ns_frame * 1e-6, 3)
        .cell(m.planned_ns_frame * 1e-6, 3)
        .cell(m.speedup(), 2)
        .cell(static_cast<double>(m.winograd_nodes), 0)
        .cell(static_cast<double>(m.direct_nodes), 0)
        .cell(m.max_abs_diff, 6);
  }

  bench::emit(cli, {layer_table, model_table});

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(layers, model_results);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  return 0;
}
