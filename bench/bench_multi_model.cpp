// Multi-model serving: dynamic micro-batching vs frame-at-a-time.
//
// The paper's concurrent-execution measurements (Table 3) run the VIP
// model suite — vest detection, body pose, depth — against one GPU and
// watch per-model latency degrade. This bench reproduces that setup on
// the ModelServer scheduler: three clients flood their models through
// one worker slot (one accelerator) with roofline-modelled batch
// latencies for the chosen device, once with micro-batching disabled
// (max_batch 1) and once enabled (max_batch 8 + coalescing window).
//
// Reported: aggregate throughput in both modes and the batched/
// unbatched speedup (expected >= 1.5x on devices with meaningful
// per-launch overhead), plus per-model p99 serve latency, which must
// order by priority class: detection (critical) < pose (high) <
// depth (normal).
//
// The modelled timeline replays at `time-scale` real seconds per
// stream second; all reported numbers are stream-clock ms. Emits
// BENCH_multi_model.json for scripts/check_bench_regression.py.
#include <chrono>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "devsim/device.hpp"
#include "models/registry.hpp"
#include "runtime/model_server.hpp"

using namespace ocb;
using namespace ocb::runtime;

namespace {

using Clock = std::chrono::steady_clock;

struct ServedModel {
  models::ModelId id;
  const char* role;
  ServePriority priority;
};

// The Ocularone hazard hierarchy (§IV): vest detection outranks pose,
// pose outranks depth.
constexpr ServedModel kSuite[] = {
    {models::ModelId::kYoloV8n, "detection", ServePriority::kCritical},
    {models::ModelId::kTrtPose, "pose", ServePriority::kHigh},
    {models::ModelId::kMonodepth2, "depth", ServePriority::kNormal},
};

struct ScenarioResult {
  double makespan_ms = 0.0;      ///< stream-clock, first submit -> last resolve
  double aggregate_fps = 0.0;    ///< all models' completed frames / makespan
  ServerReport report;
};

ScenarioResult run_scenario(const devsim::DeviceSpec& device, int frames,
                            int max_batch, double window_ms,
                            double time_scale) {
  ServerConfig server_config;
  server_config.workers = 1;  // one accelerator: batches serialise
  server_config.time_scale = time_scale;
  ModelServer server(server_config);

  std::vector<int> handles;
  for (const ServedModel& m : kSuite) {
    SimulatedBatchModel sim;
    sim.profile = models::profile_model(m.id);
    sim.device = device;
    sim.occupancy_time_scale = time_scale;  // occupy the worker slot
    ServedModelConfig config;
    config.name = m.role;
    config.priority = m.priority;
    config.max_batch = max_batch;
    config.batch_window_ms = window_ms;
    config.queue_capacity = 16;
    config.admission = DropPolicy::kBlock;  // lossless: compare throughput
    handles.push_back(server.add_model(
        config, std::make_unique<SimulatedBatchRunner>(sim)));
  }

  const auto t0 = Clock::now();
  // One flooding client per model: each offers its whole frame budget
  // as fast as admission lets it, the contention regime of Table 3.
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<ServeResult>>> futures(handles.size());
  for (std::size_t m = 0; m < handles.size(); ++m) {
    futures[m].reserve(static_cast<std::size_t>(frames));
    clients.emplace_back([&, m] {
      for (int f = 0; f < frames; ++f) {
        ServeRequest request;
        request.frame = f;
        futures[m].push_back(server.submit(handles[m], request));
      }
    });
  }
  for (std::thread& c : clients) c.join();

  std::uint64_t completed = 0;
  for (auto& model_futures : futures)
    for (auto& future : model_futures)
      if (future.get().outcome == ServeOutcome::kOk) ++completed;
  const double real_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  ScenarioResult result;
  result.makespan_ms = real_ms / time_scale;
  result.aggregate_fps =
      static_cast<double>(completed) / (result.makespan_ms / 1000.0);
  result.report = server.report();
  server.shutdown();
  return result;
}

std::string to_json(const devsim::DeviceSpec& device, int frames,
                    const ScenarioResult& unbatched,
                    const ScenarioResult& batched, double speedup) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"multi_model\",\n"
      << "  \"device\": \"" << device.name << "\",\n"
      << "  \"frames_per_model\": " << frames << ",\n"
      << "  \"unbatched\": {\"makespan_ms\": " << unbatched.makespan_ms
      << ", \"aggregate_fps\": " << unbatched.aggregate_fps << "},\n"
      << "  \"batched\": {\"makespan_ms\": " << batched.makespan_ms
      << ", \"aggregate_fps\": " << batched.aggregate_fps << "},\n"
      << "  \"batched_speedup\": " << speedup << ",\n  \"models\": [\n";
  for (std::size_t i = 0; i < batched.report.models.size(); ++i) {
    const ModelServeTelemetry& b = batched.report.models[i];
    const ModelServeTelemetry& u = unbatched.report.models[i];
    out << "    {\"model\": \"" << b.name << "\", \"priority\": \""
        << serve_priority_name(b.priority)
        << "\", \"mean_batch\": " << b.mean_batch()
        << ", \"largest_batch\": " << b.largest_batch
        << ", \"p99_serve_ms_batched\": " << b.serve_ms.p99()
        << ", \"p99_serve_ms_unbatched\": " << u.serve_ms.p99() << "}"
        << (i + 1 < batched.report.models.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_multi_model",
          "multi-model serving scheduler: micro-batching vs frame-at-a-time "
          "under single-accelerator contention");
  bench::add_common_flags(cli);
  cli.add_int("frames", 240, "frames each client offers its model");
  cli.add_int("max-batch", 8, "micro-batch ceiling in the batched run");
  cli.add_double("window-ms", 4.0,
                 "batch coalescing window, stream-clock ms (batched run)");
  cli.add_double("time-scale", 0.02,
                 "real seconds per stream second (smaller = faster replay)");
  cli.add_string("device", "rtx4090", "devsim device for the latency model");
  cli.add_string("out", "BENCH_multi_model.json",
                 "machine-readable output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const devsim::DeviceSpec& device =
      devsim::device_by_short_name(cli.string("device"));
  const int frames = static_cast<int>(cli.integer("frames"));
  const double time_scale = cli.real("time-scale");

  const ScenarioResult unbatched =
      run_scenario(device, frames, /*max_batch=*/1, /*window_ms=*/0.0,
                   time_scale);
  const ScenarioResult batched = run_scenario(
      device, frames, static_cast<int>(cli.integer("max-batch")),
      cli.real("window-ms"), time_scale);
  const double speedup = unbatched.aggregate_fps > 0.0
                             ? batched.aggregate_fps / unbatched.aggregate_fps
                             : 0.0;

  ResultTable summary(
      "Aggregate throughput, 3 models on one " + std::string(device.name) +
          " slot (" + std::to_string(frames) + " frames/model)",
      {"mode", "makespan ms", "aggregate fps", "speedup"});
  summary.row()
      .cell("frame-at-a-time")
      .cell(unbatched.makespan_ms, 1)
      .cell(unbatched.aggregate_fps, 1)
      .cell(1.0, 2);
  summary.row()
      .cell("micro-batched")
      .cell(batched.makespan_ms, 1)
      .cell(batched.aggregate_fps, 1)
      .cell(speedup, 2);

  ResultTable per_model(
      "Per-model serving telemetry (batched run)",
      {"model", "priority", "mean batch", "max batch", "q-hwm",
       "p99 serve ms", "p99 unbatched"});
  for (std::size_t i = 0; i < batched.report.models.size(); ++i) {
    const ModelServeTelemetry& b = batched.report.models[i];
    per_model.row()
        .cell(b.name)
        .cell(serve_priority_name(b.priority))
        .cell(b.mean_batch(), 2)
        .cell(static_cast<double>(b.largest_batch), 0)
        .cell(static_cast<double>(b.queue_high_water), 0)
        .cell(b.serve_ms.p99(), 2)
        .cell(unbatched.report.models[i].serve_ms.p99(), 2);
  }

  bench::emit(cli, {summary, per_model});
  std::cout << batched.report.to_text() << '\n';

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(device, frames, unbatched, batched, speedup);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  return 0;
}
