// Table 2 — DNN model specifications.
//
// Builds every benchmark model graph and prints parameter counts and
// serialized sizes next to the paper's numbers. The paper's "Model Size"
// column for the YOLO/pose models corresponds to FP16 checkpoints, so
// both FP32 and FP16 sizes are reported.
#include "bench_common.hpp"
#include "models/registry.hpp"

using namespace ocb;
using namespace ocb::models;

int main(int argc, char** argv) {
  Cli cli("bench_table2_models",
          "Reproduce Table 2: model parameters and sizes");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  ResultTable table("Table 2: DNN model specifications",
                    {"category", "model", "params (M)", "paper (M)",
                     "size fp32 (MB)", "size fp16 (MB)", "paper (MB)",
                     "GFLOPs", "layers"});
  for (const ModelInfo& info : model_table()) {
    const nn::Graph graph = build_model(info.id);
    const double params_m = static_cast<double>(graph.param_count()) / 1e6;
    table.row()
        .cell(info.category)
        .cell(info.name)
        .cell(params_m, 2)
        .cell(info.paper_params_m, 2)
        .cell(graph.size_mb(), 2)
        .cell(graph.size_mb() / 2.0, 2)
        .cell(info.paper_size_mb, 2)
        .cell(graph.flops() / 1e9, 1)
        .cell(static_cast<std::size_t>(graph.node_count()));
  }
  bench::emit(cli, {table});
  return 0;
}
