// Table 1 — dataset summary.
//
// Regenerates the Ocularone dataset taxonomy at the requested scale and
// prints generated counts next to the paper's Table 1 numbers, plus the
// capture-session statistics (43 videos of 1–2 min at full scale).
#include "bench_common.hpp"
#include "dataset/generator.hpp"

using namespace ocb;
using namespace ocb::dataset;

int main(int argc, char** argv) {
  Cli cli("bench_table1_dataset",
          "Reproduce Table 1: the 30,711-image dataset taxonomy");
  bench::add_common_flags(cli);
  cli.add_double("scale", 0.1,
                 "fraction of the paper's image counts (1.0 = full 30,711)");
  cli.add_int("seed", 42, "dataset seed");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  DatasetConfig config;
  config.scale = cli.real("scale");
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  const DatasetGenerator generator(config);

  ResultTable table(
      "Table 1: Dataset summary (scale=" + format_fixed(config.scale, 2) + ")",
      {"category", "sub-category", "paper count", "generated", "videos"});
  for (const CategoryInfo& info : category_table()) {
    std::size_t videos = 0;
    for (const VideoClip& clip : generator.videos())
      if (clip.category == info.category) ++videos;
    table.row()
        .cell(info.group)
        .cell(info.sub)
        .cell(static_cast<std::int64_t>(info.paper_count))
        .cell(generator.count(info.category))
        .cell(videos);
  }
  table.row()
      .cell("Total")
      .cell("")
      .cell(static_cast<std::int64_t>(paper_total_images()))
      .cell(generator.samples().size())
      .cell(generator.videos().size());

  // Capture-session statistics, mirroring §2's description.
  ResultTable sessions("Capture sessions (paper: 43 videos of 1-2 min, "
                       "30 FPS capture, 10 FPS extraction)",
                       {"metric", "value"});
  double total_s = 0.0, min_s = 1e9, max_s = 0.0;
  for (const VideoClip& clip : generator.videos()) {
    total_s += clip.duration_s();
    min_s = std::min(min_s, clip.duration_s());
    max_s = std::max(max_s, clip.duration_s());
  }
  sessions.row().cell("videos").cell(generator.videos().size());
  sessions.row().cell("total footage (min)").cell(total_s / 60.0, 1);
  sessions.row().cell("shortest clip (s)").cell(min_s, 1);
  sessions.row().cell("longest clip (s)").cell(max_s, 1);
  sessions.row().cell("extraction fps").cell(std::int64_t{kExtractFps});

  bench::emit(cli, {table, sessions});
  return 0;
}
