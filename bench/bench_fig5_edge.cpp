// Fig 5 — per-frame inference time on the Jetson edge accelerators.
//
// The paper benchmarks ~1,000 frames per (model, device) and shows box
// plots in four panels: YOLOv8 sizes, YOLOv11 sizes, Bodypose and
// Monodepth2. This bench simulates the same experiment through the
// roofline device model and prints median / IQR / p95 per combination,
// with the paper's envelope for comparison.
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "devsim/simulator.hpp"
#include "models/registry.hpp"
#include "runtime/pipeline.hpp"

using namespace ocb;
using namespace ocb::devsim;
using namespace ocb::models;
using namespace ocb::runtime;

int main(int argc, char** argv) {
  Cli cli("bench_fig5_edge",
          "Reproduce Fig 5: inference times on Jetson edge accelerators");
  bench::add_common_flags(cli);
  cli.add_int("frames", 1000, "frames per (model, device) — paper: ~1,000");
  cli.add_int("seed", 7, "jitter seed");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const int frames = static_cast<int>(cli.integer("frames"));
  std::vector<ResultTable> tables;

  struct Panel {
    std::string title;
    std::vector<ModelId> models;
  };
  const std::vector<Panel> panels = {
      {"Fig 5a: YOLOv8 (ms/frame)",
       {ModelId::kYoloV8n, ModelId::kYoloV8m, ModelId::kYoloV8x}},
      {"Fig 5b: YOLOv11 (ms/frame)",
       {ModelId::kYoloV11n, ModelId::kYoloV11m, ModelId::kYoloV11x}},
      {"Fig 5c: Bodypose (ms/frame)", {ModelId::kTrtPose}},
      {"Fig 5d: Monodepth2 (ms/frame)", {ModelId::kMonodepth2}},
  };

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  for (const Panel& panel : panels) {
    ResultTable table(panel.title, {"model", "device", "median", "q1", "q3",
                                    "p95", "max", "fits RAM"});
    for (ModelId id : panel.models) {
      const auto profile = profile_model(id);
      for (DeviceId dev_id : edge_devices()) {
        const DeviceSpec& dev = device_spec(dev_id);
        // One single-stage pipeline per (model, device), as the paper
        // benchmarks each model in isolation.
        Pipeline pipeline =
            PipelineBuilder()
                .stage(std::make_unique<SimulatedExecutor>(profile, dev,
                                                           rng()))
                .deadline_ms(200.0)
                .build();
        const Summary s = pipeline.run(frames).per_frame;
        table.row()
            .cell(model_info(id).name)
            .cell(dev.short_name)
            .cell(s.median, 1)
            .cell(s.q1, 1)
            .cell(s.q3, 1)
            .cell(s.p95, 1)
            .cell(s.max, 1)
            .cell(fits_in_memory(profile, dev) ? "yes" : "NO");
      }
    }
    tables.push_back(std::move(table));
  }

  // §4.2.3 envelope verdicts.
  ResultTable verdict("Fig 5 paper-envelope checks", {"claim", "observed"});
  auto med = [&](ModelId id, DeviceId dev) {
    return model_latency_ms(profile_model(id), device_spec(dev));
  };
  verdict.row()
      .cell("YOLO n/m <= 200 ms on Orin-class devices")
      .cell(format_fixed(
                std::max({med(ModelId::kYoloV8m, DeviceId::kOrinAgx),
                          med(ModelId::kYoloV8m, DeviceId::kOrinNano),
                          med(ModelId::kYoloV11m, DeviceId::kOrinNano)}),
                0) +
            " ms worst");
  verdict.row()
      .cell("YOLO x <= 500 ms on Orin-class devices")
      .cell(format_fixed(std::max(med(ModelId::kYoloV8x, DeviceId::kOrinAgx),
                                  med(ModelId::kYoloV8x, DeviceId::kOrinNano)),
                         0) +
            " ms worst");
  verdict.row()
      .cell("YOLO x reaches ~989 ms on Xavier NX")
      .cell(format_fixed(med(ModelId::kYoloV8x, DeviceId::kXavierNx), 0) +
            " ms");
  verdict.row()
      .cell("Bodypose median 28-47 ms band")
      .cell(format_fixed(med(ModelId::kTrtPose, DeviceId::kOrinAgx), 0) +
            " .. " +
            format_fixed(med(ModelId::kTrtPose, DeviceId::kXavierNx), 0) +
            " ms");
  verdict.row()
      .cell("Monodepth2 75-232 ms band")
      .cell(format_fixed(med(ModelId::kMonodepth2, DeviceId::kOrinAgx), 0) +
            " .. " +
            format_fixed(med(ModelId::kMonodepth2, DeviceId::kXavierNx), 0) +
            " ms");
  tables.push_back(std::move(verdict));

  bench::emit(cli, tables);
  return 0;
}
