// Memory-traffic elimination benchmark: the fused execution stack
// (im2col-free conv packing + residual/concat graph fusion + the
// liveness-planned activation arena, PlanRequest::fusion) against the
// pre-fusion planner path (PR 7 candidate set: materialized im2col /
// direct / Winograd, one activation buffer per node).
//
// Walks the registry's conv-heavy VIP models that carry residual adds
// and channel concats (YOLOv8-n, Monodepth2) at a CPU-friendly input
// scale, checks the fused engine is numerically equivalent to the
// baseline (max |diff| <= 1e-5), verifies the warmed fused frame path
// stays off the allocator, and measures whole-model frame latency for
// both. Emits BENCH_fusion.json (top-level "bench": "fusion") consumed
// by scripts/check_bench_regression.py --mode fusion in CI: the gate
// model (YOLOv8-x, the largest conv-heavy model) must hold the
// configured frame-speedup floor and a >= 30% peak-arena reduction.
// The floor is host-dependent (see EXPERIMENTS.md): on a single
// AVX2 core the whole model is compute-bound and fusion buys
// 1.05-1.12x end to end (individual streamed-im2col layers gain
// 1.3-1.9x), but a shared runner draws +/-8% run-to-run noise even
// with the interleaved-pair median below, so CI's default floor
// (0.95x) is a mispick-regression catcher — the planner-bug class it
// exists for measures <= 0.90x — while the 1.25x whole-model target
// applies to bandwidth-bound Jetson-class deployments and the
// stronger per-layer claim is gated by bench_conv_planner.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/alloc_guard.hpp"
#include "core/rng.hpp"
#include "models/registry.hpp"
#include "nn/engine.hpp"
#include "tensor/simd.hpp"

using namespace ocb;

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double seconds_once(F&& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct FusionResult {
  std::string name;
  double base_ns_frame = 0.0;   ///< planner path, fusion off
  double fused_ns_frame = 0.0;  ///< fused kernels + graph fusion + arena
  double pair_speedup = 0.0;    ///< median of per-pair base/fused ratios
  double max_abs_diff = 0.0;
  int fused_nodes = 0;
  int residual_fused = 0;
  int concat_elided = 0;
  std::size_t arena_before = 0;  ///< one-buffer-per-node bytes
  std::size_t arena_after = 0;   ///< liveness-planned arena bytes
  std::uint64_t warm_allocs = 0;

  double speedup() const noexcept { return pair_speedup; }
  double arena_reduction() const noexcept {
    return arena_before > 0
               ? 1.0 - static_cast<double>(arena_after) /
                           static_cast<double>(arena_before)
               : 0.0;
  }
};

FusionResult bench_model(models::ModelId id, double input_scale,
                         double min_seconds) {
  const nn::Graph graph = models::build_model(id, input_scale);

  // Baseline: the planner as of the pre-fusion candidate set —
  // materialized im2col / direct 1x1 / Winograd, no graph fusion, one
  // activation buffer per node.
  nn::Engine base(graph, 5);
  nn::PlanRequest base_req;
  base_req.planner.enable_fused = false;
  base.prepare(base_req);

  // Fused: full candidate set plus residual folding, concat placement
  // and the liveness-planned arena.
  nn::Engine fused(graph, 5);
  nn::PlanRequest fused_req;
  fused_req.fusion = nn::FusionConfig{true, true, true};
  const nn::ExecutionPlan& plan = fused.prepare(fused_req);

  FusionResult result;
  result.name = models::model_info(id).name;
  result.fused_nodes = plan.fused_nodes;
  result.residual_fused = plan.residual_fused;
  result.concat_elided = plan.concat_elided;
  result.arena_before = plan.arena_peak_bytes_before;
  result.arena_after = plan.arena_peak_bytes_after;

  const nn::FeatShape in = graph.input_shape();
  Tensor input({1, in.c, in.h, in.w});
  Rng rng(3);
  input.init_uniform(rng, 0.0f, 1.0f);

  const auto ref = base.run(input);  // also warms both engines
  const auto got = fused.run(input);
  for (std::size_t o = 0; o < ref.size(); ++o)
    for (std::size_t i = 0; i < ref[o].numel(); ++i)
      result.max_abs_diff = std::max(
          result.max_abs_diff,
          static_cast<double>(std::fabs(ref[o][i] - got[o][i])));

  {
    // The warmed fused frame path must stay off the allocator (the
    // AllocGuard contract, DESIGN.md §10). Counts 0 trivially when the
    // hooks are compiled out; the JSON records which it was.
    AllocGuard guard;
    (void)fused.run(input);
    result.warm_allocs = guard.allocations();
  }

  // Interleaved sampling: shared hosts drift by tens of percent over
  // a bench's lifetime (frequency scaling, noisy neighbours), and the
  // large models run >1 s/frame, so measuring a base block then a
  // fused block would time the drift, not the code. Instead each
  // sample is an adjacent base/fused frame *pair* — the within-pair
  // ratio is drift-free — and the gated speedup is the median of the
  // pair ratios, which single outlier frames cannot move.
  double base_s = 0.0;
  double fused_s = 0.0;
  std::vector<double> ratios;
  while (base_s + fused_s < 2.0 * min_seconds ||
         ratios.size() < 7) {
    const double b = seconds_once([&] { base.run(input); });
    const double f = seconds_once([&] { fused.run(input); });
    base_s += b;
    fused_s += f;
    ratios.push_back(f > 0.0 ? b / f : 0.0);
  }
  const auto mid = ratios.begin() + static_cast<std::ptrdiff_t>(ratios.size() / 2);
  std::nth_element(ratios.begin(), mid, ratios.end());
  result.pair_speedup = *mid;
  result.base_ns_frame = base_s / static_cast<double>(ratios.size()) * 1e9;
  result.fused_ns_frame =
      fused_s / static_cast<double>(ratios.size()) * 1e9;
  return result;
}

std::string to_json(const std::vector<FusionResult>& results,
                    const std::string& gate_model) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"fusion\",\n";
  out << "  \"simd\": \"" << simd::level_name(simd::active()) << "\",\n";
  out << "  \"alloc_counting\": "
      << (alloc_counting_active() ? "true" : "false") << ",\n";
  out << "  \"gate_model\": \"" << gate_model << "\",\n";
  out << "  \"models\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FusionResult& r = results[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"base_ns_frame\": " << r.base_ns_frame
        << ", \"fused_ns_frame\": " << r.fused_ns_frame
        << ", \"speedup\": " << r.speedup()
        << ", \"fused_nodes\": " << r.fused_nodes
        << ", \"residual_fused\": " << r.residual_fused
        << ", \"concat_elided\": " << r.concat_elided
        << ", \"arena_before_bytes\": " << r.arena_before
        << ", \"arena_after_bytes\": " << r.arena_after
        << ", \"arena_reduction\": " << r.arena_reduction()
        << ", \"warm_allocs\": " << r.warm_allocs
        << ", \"max_abs_diff\": " << r.max_abs_diff << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fusion",
          "fused conv packing + graph fusion + arena planning vs the "
          "pre-fusion planner path");
  bench::add_common_flags(cli);
  cli.add_double("min-seconds", 0.2,
                 "minimum sampling time per measurement point");
  cli.add_double("input-scale", 0.3,
                 "registry model input scale (1.0 = deployment resolution); "
                 "0.3 keeps the CI run short while the streamed-im2col "
                 "layers the fused path targets stay past cache residency");
  cli.add_string("out", "BENCH_fusion.json",
                 "machine-readable output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);
  const double min_seconds = cli.real("min-seconds");
  const double input_scale = cli.real("input-scale");

  // The residual/concat-carrying VIP models: YOLOv8-n (C2f blocks —
  // both bottleneck adds and split/merge concats), YOLOv8-x (the same
  // topology at the registry's largest width/depth) and Monodepth2
  // (ResNet-18 residual encoder + skip-concat decoder).
  const std::vector<models::ModelId> ids = {models::ModelId::kYoloV8n,
                                            models::ModelId::kYoloV8x,
                                            models::ModelId::kMonodepth2};

  std::vector<FusionResult> results;
  for (models::ModelId id : ids)
    results.push_back(bench_model(id, input_scale, min_seconds));

  // The CI gate pins the largest conv-heavy model.
  const std::string gate_model =
      models::model_info(models::ModelId::kYoloV8x).name;

  ResultTable table(
      "Whole model: fused engine vs pre-fusion planner engine",
      {"model", "base ms", "fused ms", "speedup", "res", "concat",
       "arena red.", "warm allocs", "max |diff|"});
  for (const FusionResult& r : results) {
    table.row()
        .cell(r.name)
        .cell(r.base_ns_frame * 1e-6, 3)
        .cell(r.fused_ns_frame * 1e-6, 3)
        .cell(r.speedup(), 2)
        .cell(static_cast<double>(r.residual_fused), 0)
        .cell(static_cast<double>(r.concat_elided), 0)
        .cell(r.arena_reduction(), 3)
        .cell(static_cast<double>(r.warm_allocs), 0)
        .cell(r.max_abs_diff, 7);
  }
  bench::emit(cli, {table});

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(results, gate_model);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  return 0;
}
