// Fig 6 — inference times on the RTX 4090 GPU workstation.
//
// Paper (§4.2.4): nano/medium YOLO plus Bodypose and Monodepth2 land
// within 10 ms per frame, the x-large models under 20 ms, everything
// under 25 ms — roughly 50× faster than Xavier NX.
#include <algorithm>
#include <memory>

#include "bench_common.hpp"
#include "devsim/simulator.hpp"
#include "models/registry.hpp"
#include "runtime/pipeline.hpp"

using namespace ocb;
using namespace ocb::devsim;
using namespace ocb::models;
using namespace ocb::runtime;

int main(int argc, char** argv) {
  Cli cli("bench_fig6_workstation",
          "Reproduce Fig 6: inference times on the RTX 4090 workstation");
  bench::add_common_flags(cli);
  cli.add_int("frames", 1000, "frames per model — paper: ~1,000");
  cli.add_int("seed", 11, "jitter seed");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const int frames = static_cast<int>(cli.integer("frames"));
  const DeviceSpec& gpu = device_spec(DeviceId::kRtx4090);
  const DeviceSpec& nx = device_spec(DeviceId::kXavierNx);

  Rng rng(static_cast<std::uint64_t>(cli.integer("seed")));
  ResultTable table("Fig 6: inference times on RTX 4090 (ms/frame)",
                    {"model", "median", "q1", "q3", "p95", "max",
                     "speedup vs nx"});
  for (const ModelInfo& info : model_table()) {
    const auto profile = profile_model(info.id);
    Pipeline pipeline =
        PipelineBuilder()
            .stage(std::make_unique<SimulatedExecutor>(profile, gpu, rng()))
            .deadline_ms(25.0)  // the paper's workstation envelope
            .build();
    const Summary s = pipeline.run(frames).per_frame;
    const double nx_ms = model_latency_ms(profile, nx);
    table.row()
        .cell(info.name)
        .cell(s.median, 2)
        .cell(s.q1, 2)
        .cell(s.q3, 2)
        .cell(s.p95, 2)
        .cell(s.max, 2)
        .cell(nx_ms / s.median, 1);
  }

  ResultTable verdict("Fig 6 paper-envelope checks", {"claim", "observed"});
  auto ms = [&](ModelId id) {
    return model_latency_ms(profile_model(id), gpu);
  };
  double worst = 0.0;
  for (const ModelInfo& info : model_table())
    worst = std::max(worst, ms(info.id));
  verdict.row()
      .cell("all models <= 25 ms")
      .cell(format_fixed(worst, 1) + " ms worst");
  verdict.row()
      .cell("n/m YOLO + Bodypose + Monodepth2 <= 10 ms")
      .cell(format_fixed(std::max({ms(ModelId::kYoloV8m),
                                   ms(ModelId::kYoloV11m),
                                   ms(ModelId::kTrtPose),
                                   ms(ModelId::kMonodepth2)}),
                         1) +
            " ms worst");
  verdict.row()
      .cell("x-large <= 20 ms, ~50x faster than Xavier NX")
      .cell(format_fixed(ms(ModelId::kYoloV8x), 1) + " ms, " +
            format_fixed(model_latency_ms(profile_model(ModelId::kYoloV8x),
                                          nx) /
                             ms(ModelId::kYoloV8x),
                         0) +
            "x");
  bench::emit(cli, {table, verdict});
  return 0;
}
