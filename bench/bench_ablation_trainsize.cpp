// Training-set-size ablation (generalises Fig 1; DESIGN.md decision 4).
//
// Trains the v11-m detector on curated training sets of increasing
// size and evaluates on the same diverse test pool — the accuracy curve
// whose two endpoints Fig 1 reports.
#include "bench_accuracy_common.hpp"

using namespace ocb;

int main(int argc, char** argv) {
  Cli cli("bench_ablation_trainsize",
          "Accuracy vs curated training-set size (v11-m)");
  bench::add_accuracy_flags(cli);
  cli.add_string("sizes", "20,45,90,150",
                 "comma-separated training-set sizes (images)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  std::vector<std::size_t> sizes;
  {
    std::stringstream ss(cli.string("sizes"));
    std::string item;
    while (std::getline(ss, item, ','))
      sizes.push_back(static_cast<std::size_t>(std::stoul(item)));
  }

  const auto config = bench::accuracy_config(cli);
  OCB_INFO << "training " << sizes.size() << " v11-m variants...";
  const auto results = trainer::run_trainsize_sweep(config, sizes);

  ResultTable table("Ablation: accuracy vs training-set size (YOLOv11-m)",
                    {"train images", "precision %", "recall %",
                     "accuracy %"});
  for (const auto& [count, metrics] : results)
    table.row()
        .cell(count)
        .cell(metrics.precision * 100.0, 2)
        .cell(metrics.recall * 100.0, 2)
        .cell(metrics.accuracy * 100.0, 2);

  ResultTable verdict("Shape check", {"claim", "holds"});
  verdict.row()
      .cell("largest training set at least matches the smallest")
      .cell(results.back().second.accuracy >=
                    results.front().second.accuracy
                ? "yes"
                : "NO");
  bench::emit(cli, {table, verdict});
  return 0;
}
