// Fault-injection resilience benchmark (DESIGN.md §14): sweeps seeded
// bit-flip rates across packed weight panels of two model sizes and
// measures (a) the checksum layer's verify-cadence overhead on the
// clean frame path, (b) accuracy degradation (output divergence) per
// fault rate, (c) detection + bit-exact recovery through
// Engine::verify_weights, (d) the ModelServer quarantine/reload/
// re-admit state machine's latency in frames, and (e) devsim
// degradation modes (thermal throttle, bandwidth collapse) priced by
// the roofline model. Emits BENCH_fault.json (top-level "bench":
// "fault") consumed by scripts/check_bench_regression.py --mode fault
// in CI, which gates: verify overhead <= 2% median frame latency,
// recovery restores bit-exact clean outputs, quarantine engages within
// the configured frame budget and the model is re-admitted, and the
// warmed verify-enabled frame path stays off the allocator.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/alloc_guard.hpp"
#include "core/rng.hpp"
#include "devsim/device.hpp"
#include "devsim/roofline.hpp"
#include "fault/fault.hpp"
#include "models/registry.hpp"
#include "nn/engine.hpp"
#include "nn/profile.hpp"
#include "runtime/model_server.hpp"
#include "tensor/fault_hook.hpp"
#include "tensor/simd.hpp"

using namespace ocb;

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double seconds_once(F&& body) {
  const auto t0 = Clock::now();
  body();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct SweepPoint {
  double flip_prob = 0.0;
  std::size_t flips = 0;
  double max_abs_diff = 0.0;
  double rel_err = 0.0;
};

struct RecoveryResult {
  std::size_t flips = 0;
  int mismatch_nodes = 0;
  bool detected = false;
  double max_abs_diff_corrupt = 0.0;
  double max_abs_diff_after = -1.0;  ///< must land exactly at 0.0
};

struct QuarantineResult {
  int frames_to_quarantine = -1;  ///< first kDegraded answer (request idx)
  int readmit_frame = -1;         ///< first kOk after the quarantine
  bool readmitted = false;
  std::uint64_t quarantines = 0;
  std::uint64_t reloads = 0;
  std::uint64_t unhealthy_batches = 0;
};

struct ModelFaultResult {
  std::string name;
  double clean_ns_frame = 0.0;
  double verify_ns_frame = 0.0;
  double verify_overhead_pct = 0.0;  ///< median pair ratio - 1, floored at 0
  std::uint64_t warm_allocs = 0;     ///< verify-enabled warmed frame
  std::vector<SweepPoint> sweep;
  RecoveryResult recovery;
  QuarantineResult quarantine;
};

/// max |a-b| and sum|a-b| / sum|a| across all outputs.
void output_divergence(const std::vector<Tensor>& ref,
                       const std::vector<Tensor>& got, double& max_abs,
                       double& rel) {
  max_abs = 0.0;
  double num = 0.0;
  double den = 0.0;
  for (std::size_t o = 0; o < ref.size(); ++o) {
    for (std::size_t i = 0; i < ref[o].numel(); ++i) {
      const double a = ref[o][i];
      const double b = got[o][i];
      const double d = std::fabs(a - b);
      if (std::isfinite(d)) max_abs = std::max(max_abs, d);
      num += std::isfinite(d) ? d : 1.0;
      den += std::fabs(a);
    }
  }
  rel = den > 0.0 ? num / den : num;
}

ModelFaultResult bench_model(models::ModelId id, double input_scale,
                             double min_seconds, int verify_cadence) {
  const nn::Graph graph = models::build_model(id, input_scale);
  ModelFaultResult result;
  result.name = models::model_info(id).name;

  const nn::FeatShape in = graph.input_shape();
  Tensor input({1, in.c, in.h, in.w});
  Rng rng(3);
  input.init_uniform(rng, 0.0f, 1.0f);

  // --- (a) verify-cadence overhead: clean engine vs twin with the
  // round-robin checksum tick enabled. Interleaved pair sampling (see
  // bench_fusion.cpp) keeps the ratio drift-free on shared hosts.
  nn::Engine clean(graph, 5);
  clean.prepare(nn::PlanRequest{});
  nn::Engine verified(graph, 5);
  {
    nn::PlanRequest req;
    req.integrity.verify_every = verify_cadence;
    verified.prepare(req);
  }
  const std::vector<Tensor> ref = clean.run(input);  // copy: snapshot
  (void)verified.run(input);                         // warm

  {
    // The warmed verify-enabled frame path must stay off the allocator:
    // the CRC sweep is table-driven and heap-free (core/crc32.hpp).
    AllocGuard guard;
    (void)verified.run(input);
    result.warm_allocs = guard.allocations();
  }

  double clean_s = 0.0;
  double verify_s = 0.0;
  std::vector<double> ratios;
  while (clean_s + verify_s < 2.0 * min_seconds || ratios.size() < 9) {
    // Alternate which twin runs first so clock drift / turbo decay
    // cancels out of the pair ratio instead of biasing it.
    double c, v;
    if (ratios.size() % 2 == 0) {
      c = seconds_once([&] { clean.run(input); });
      v = seconds_once([&] { verified.run(input); });
    } else {
      v = seconds_once([&] { verified.run(input); });
      c = seconds_once([&] { clean.run(input); });
    }
    clean_s += c;
    verify_s += v;
    ratios.push_back(c > 0.0 ? v / c : 1.0);
  }
  const auto mid =
      ratios.begin() + static_cast<std::ptrdiff_t>(ratios.size() / 2);
  std::nth_element(ratios.begin(), mid, ratios.end());
  result.verify_overhead_pct = std::max(0.0, (*mid - 1.0) * 100.0);
  result.clean_ns_frame = clean_s / static_cast<double>(ratios.size()) * 1e9;
  result.verify_ns_frame =
      verify_s / static_cast<double>(ratios.size()) * 1e9;

  // --- (b) fault-rate sweep: corrupt, measure divergence, recover.
  for (const double prob : {1e-7, 1e-6, 1e-5}) {
    fault::FaultPlan plan;
    plan.seed = 0xFA017;
    plan.weight_flip_prob = prob;
    fault::FaultInjector injector(plan);
    SweepPoint point;
    point.flip_prob = prob;
    point.flips = injector.corrupt_engine(clean);
    const std::vector<Tensor> got = clean.run(input);
    output_divergence(ref, got, point.max_abs_diff, point.rel_err);
    result.sweep.push_back(point);
    clean.verify_weights(/*recover=*/true);  // restore between points
  }

  // --- (c) detection + bit-exact recovery at the heaviest rate. Walk
  // seeds until the Bernoulli draw actually lands flips (tiny models
  // at low rates can draw zero).
  {
    fault::FaultPlan plan;
    plan.weight_flip_prob = 1e-5;
    for (std::uint64_t seed = 1;; ++seed) {
      plan.seed = seed;
      fault::FaultInjector injector(plan);
      result.recovery.flips = injector.corrupt_engine(clean);
      if (result.recovery.flips > 0) break;
    }
    result.recovery.mismatch_nodes = clean.verify_weights(/*recover=*/false);
    result.recovery.detected = result.recovery.mismatch_nodes > 0;
    const std::vector<Tensor> corrupt = clean.run(input);
    double rel = 0.0;
    output_divergence(ref, corrupt, result.recovery.max_abs_diff_corrupt,
                      rel);
    clean.verify_weights(/*recover=*/true);
    const std::vector<Tensor> after = clean.run(input);
    output_divergence(ref, after, result.recovery.max_abs_diff_after, rel);
  }

  // --- (d) quarantine state machine: a served model whose checksum
  // sweep fails is quarantined, cooled down, reloaded and re-admitted.
  {
    nn::Engine served(graph, 5);
    served.prepare(nn::PlanRequest{});
    runtime::ModelServer server(runtime::ServerConfig{});
    runtime::ServedModelConfig cfg;
    cfg.name = result.name;
    cfg.max_batch = 1;
    cfg.batch_window_ms = 0.0;
    cfg.degraded_cooldown = 2;
    cfg.quarantine_after = 1;
    nn::IntegrityConfig integrity;
    integrity.verify_every = 1;
    const int handle = server.add_model(
        cfg, std::make_unique<runtime::EngineBatchRunner>(
                 served, cfg.max_batch, nn::FusionConfig{}, integrity));

    fault::FaultPlan plan;
    plan.seed = 7;
    plan.weight_flip_prob = 1e-4;
    fault::FaultInjector injector(plan);
    while (injector.corrupt_engine(served) == 0) {
    }

    const auto shared_input = std::make_shared<const Tensor>(input);
    for (int frame = 0; frame < 8; ++frame) {
      runtime::ServeRequest request;
      request.frame = frame;
      request.input = shared_input;
      const runtime::ServeResult r = server.serve(handle, request);
      if (r.outcome == runtime::ServeOutcome::kDegraded &&
          result.quarantine.frames_to_quarantine < 0)
        result.quarantine.frames_to_quarantine = frame;
      if (r.outcome == runtime::ServeOutcome::kOk &&
          result.quarantine.frames_to_quarantine >= 0 &&
          result.quarantine.readmit_frame < 0) {
        result.quarantine.readmit_frame = frame;
        result.quarantine.readmitted = true;
      }
    }
    const runtime::ServerReport report = server.report();
    result.quarantine.quarantines = report.models[0].quarantines;
    result.quarantine.reloads = report.models[0].reloads;
    result.quarantine.unhealthy_batches = report.models[0].unhealthy_batches;
    server.shutdown();
  }

  return result;
}

struct DevsimResult {
  std::string device;
  std::string model;
  double healthy_ms = 0.0;
  double thermal_ms = 0.0;    ///< compute_scale 0.5
  double bandwidth_ms = 0.0;  ///< bandwidth_scale 0.3
};

DevsimResult bench_devsim(models::ModelId id) {
  DevsimResult r;
  const models::ModelInfo& info = models::model_info(id);
  const nn::Graph graph = models::build_model(id);
  const nn::ModelProfile profile = nn::profile_graph(graph, info.name);
  const devsim::DeviceSpec& device = devsim::device_by_short_name("o-nano");
  r.device = device.short_name;
  r.model = info.name;
  r.healthy_ms = devsim::model_latency_ms(profile, device);
  devsim::Degradation thermal;
  thermal.compute_scale = 0.5;
  r.thermal_ms =
      devsim::model_latency_ms(profile, devsim::degraded(device, thermal));
  devsim::Degradation collapse;
  collapse.bandwidth_scale = 0.3;
  r.bandwidth_ms =
      devsim::model_latency_ms(profile, devsim::degraded(device, collapse));
  return r;
}

/// Stuck-lane demonstration: arm lane 3 at 0.0f, run a small packed
/// GEMM, count the elements the hook overwrote. No-op (0 corrupted)
/// when OCB_FAULT_HOOKS is compiled out.
std::uint64_t lane_fault_demo() {
  if (!fault_hook::compiled()) return 0;
  const std::size_t m = 8, k = 8, n = 32;
  std::vector<float> a(m * k, 1.0f), b(k * n, 1.0f), c(m * n, 0.0f);
  PackedA packed(a.data(), m, k);
  fault::FaultPlan plan;
  plan.stuck_lane = 3;
  plan.stuck_value = 0.0f;
  fault::FaultInjector injector(plan);
  const std::uint64_t before = fault_hook::corrupted_elements();
  injector.arm_lane_fault();
  gemm_packed(packed, b.data(), c.data(), n);
  fault::FaultInjector::disarm_lane_fault();
  return fault_hook::corrupted_elements() - before;
}

std::string to_json(const std::vector<ModelFaultResult>& results,
                    const DevsimResult& devsim_result, int verify_cadence,
                    std::uint64_t lane_corrupted) {
  double worst_overhead = 0.0;
  for (const ModelFaultResult& r : results)
    worst_overhead = std::max(worst_overhead, r.verify_overhead_pct);
  std::ostringstream out;
  out << "{\n  \"bench\": \"fault\",\n";
  out << "  \"simd\": \"" << simd::level_name(simd::active()) << "\",\n";
  out << "  \"alloc_counting\": "
      << (alloc_counting_active() ? "true" : "false") << ",\n";
  out << "  \"fault_hooks\": " << (fault_hook::compiled() ? "true" : "false")
      << ",\n";
  out << "  \"verify_cadence\": " << verify_cadence << ",\n";
  out << "  \"verify_overhead_pct\": " << worst_overhead << ",\n";
  out << "  \"lane_corrupted_elements\": " << lane_corrupted << ",\n";
  out << "  \"models\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ModelFaultResult& r = results[i];
    out << "    {\"name\": \"" << r.name
        << "\", \"clean_ns_frame\": " << r.clean_ns_frame
        << ", \"verify_ns_frame\": " << r.verify_ns_frame
        << ", \"verify_overhead_pct\": " << r.verify_overhead_pct
        << ", \"warm_allocs\": " << r.warm_allocs << ",\n     \"sweep\": [";
    for (std::size_t s = 0; s < r.sweep.size(); ++s) {
      const SweepPoint& p = r.sweep[s];
      out << (s ? ", " : "") << "{\"flip_prob\": " << p.flip_prob
          << ", \"flips\": " << p.flips
          << ", \"max_abs_diff\": " << p.max_abs_diff
          << ", \"rel_err\": " << p.rel_err << "}";
    }
    out << "],\n     \"recovery\": {\"flips\": " << r.recovery.flips
        << ", \"mismatch_nodes\": " << r.recovery.mismatch_nodes
        << ", \"detected\": " << (r.recovery.detected ? "true" : "false")
        << ", \"max_abs_diff_corrupt\": " << r.recovery.max_abs_diff_corrupt
        << ", \"max_abs_diff_after\": " << r.recovery.max_abs_diff_after
        << "},\n     \"quarantine\": {\"frames_to_quarantine\": "
        << r.quarantine.frames_to_quarantine
        << ", \"readmit_frame\": " << r.quarantine.readmit_frame
        << ", \"readmitted\": " << (r.quarantine.readmitted ? "true" : "false")
        << ", \"quarantines\": " << r.quarantine.quarantines
        << ", \"reloads\": " << r.quarantine.reloads
        << ", \"unhealthy_batches\": " << r.quarantine.unhealthy_batches
        << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  out << "  \"devsim\": {\"device\": \"" << devsim_result.device
      << "\", \"model\": \"" << devsim_result.model
      << "\", \"healthy_ms\": " << devsim_result.healthy_ms
      << ", \"thermal_ms\": " << devsim_result.thermal_ms
      << ", \"thermal_slowdown\": "
      << devsim_result.thermal_ms / devsim_result.healthy_ms
      << ", \"bandwidth_ms\": " << devsim_result.bandwidth_ms
      << ", \"bandwidth_slowdown\": "
      << devsim_result.bandwidth_ms / devsim_result.healthy_ms << "}\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fault",
          "fault-injection sweep: checksum verify overhead, bit-flip "
          "degradation curves, detection/recovery and the serving "
          "quarantine state machine");
  bench::add_common_flags(cli);
  cli.add_double("min-seconds", 0.2,
                 "minimum sampling time per measurement point");
  cli.add_double("input-scale", 0.3,
                 "registry model input scale (1.0 = deployment resolution)");
  cli.add_int("verify-cadence", 4,
              "frames between round-robin panel checksum verifications");
  cli.add_string("out", "BENCH_fault.json",
                 "machine-readable output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);
  const double min_seconds = cli.real("min-seconds");
  const double input_scale = cli.real("input-scale");
  const int verify_cadence = static_cast<int>(cli.integer("verify-cadence"));

  // Two model sizes so the fault-rate x model-size interaction is on
  // the curve: more weights at the same per-element rate mean more
  // absolute flips and faster accuracy collapse.
  const std::vector<models::ModelId> ids = {models::ModelId::kYoloV8n,
                                            models::ModelId::kYoloV8m};

  std::vector<ModelFaultResult> results;
  for (models::ModelId id : ids)
    results.push_back(
        bench_model(id, input_scale, min_seconds, verify_cadence));

  const DevsimResult devsim_result = bench_devsim(models::ModelId::kYoloV8n);
  const std::uint64_t lane_corrupted = lane_fault_demo();

  ResultTable table("Fault injection: verify overhead, detection, recovery",
                    {"model", "clean ms", "verify ms", "overhead %",
                     "warm allocs", "flips", "detected", "|diff| after",
                     "quarantine@", "readmit@"});
  for (const ModelFaultResult& r : results) {
    table.row()
        .cell(r.name)
        .cell(r.clean_ns_frame * 1e-6, 3)
        .cell(r.verify_ns_frame * 1e-6, 3)
        .cell(r.verify_overhead_pct, 2)
        .cell(static_cast<double>(r.warm_allocs), 0)
        .cell(static_cast<double>(r.recovery.flips), 0)
        .cell(r.recovery.detected ? "yes" : "NO")
        .cell(r.recovery.max_abs_diff_after, 7)
        .cell(static_cast<double>(r.quarantine.frames_to_quarantine), 0)
        .cell(static_cast<double>(r.quarantine.readmit_frame), 0);
  }
  ResultTable degr("Devsim degradation modes (o-nano, YOLOv8-n)",
                   {"mode", "latency ms", "slowdown"});
  degr.row().cell("healthy").cell(devsim_result.healthy_ms, 2).cell(1.0, 2);
  degr.row()
      .cell("thermal x0.5")
      .cell(devsim_result.thermal_ms, 2)
      .cell(devsim_result.thermal_ms / devsim_result.healthy_ms, 2);
  degr.row()
      .cell("bandwidth x0.3")
      .cell(devsim_result.bandwidth_ms, 2)
      .cell(devsim_result.bandwidth_ms / devsim_result.healthy_ms, 2);
  bench::emit(cli, {table, degr});

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(results, devsim_result, verify_cadence, lane_corrupted);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  return 0;
}
