// Kernel-layer benchmark: packed SIMD GEMM vs the scalar fallback.
//
// Measures (a) GFLOP/s on conv-representative GEMM shapes — tall-skinny
// [out_c × in_c·k·k] by wide [in_c·k·k × oh·ow] matrices like the ones
// im2col produces — and (b) end-to-end Engine::run ns/frame for the
// Ocularone VIP models at a reduced input scale, with the SIMD
// dispatcher forced off and on. Emits the aligned tables plus a
// machine-readable BENCH_kernels.json consumed by
// scripts/check_bench_regression.py in CI.
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/rng.hpp"
#include "models/registry.hpp"
#include "nn/engine.hpp"
#include "nn/quantize.hpp"
#include "tensor/gemm.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/simd.hpp"

using namespace ocb;

namespace {

using Clock = std::chrono::steady_clock;

/// Run `body` repeatedly until `min_seconds` of wall time accumulates
/// (at least twice), returning the best per-iteration seconds observed.
template <typename F>
double best_seconds(F&& body, double min_seconds) {
  double best = 1e300;
  double total = 0.0;
  int iters = 0;
  while (total < min_seconds || iters < 2) {
    const auto t0 = Clock::now();
    body();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, dt);
    total += dt;
    ++iters;
  }
  return best;
}

struct GemmShape {
  const char* label;  ///< which conv family the shape stands in for
  std::size_t m, k, n;
};

struct GemmResult {
  GemmShape shape;
  double scalar_gflops = 0.0;
  double simd_gflops = 0.0;
  double int8_gops = 0.0;  ///< packed u8×s8 GEMM, same shape
  // Dispatch level the kernel actually took (gemm_last_level()), so CI
  // can catch silent fallbacks to the scalar path.
  std::string scalar_path;
  std::string simd_path;
  std::string int8_path;
  double speedup() const noexcept {
    return scalar_gflops > 0.0 ? simd_gflops / scalar_gflops : 0.0;
  }
  double int8_speedup() const noexcept {
    return simd_gflops > 0.0 ? int8_gops / simd_gflops : 0.0;
  }
};

GemmResult bench_gemm_shape(const GemmShape& shape, double min_seconds) {
  Rng rng(41);
  std::vector<float> a(shape.m * shape.k), b(shape.k * shape.n);
  std::vector<float> c(shape.m * shape.n);
  std::vector<float> bias(shape.m, 0.1f);
  for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (float& v : b) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const double flops = 2.0 * static_cast<double>(shape.m) *
                       static_cast<double>(shape.k) *
                       static_cast<double>(shape.n);
  const GemmEpilogue epi{bias.data(), EpiAct::kSilu};
  PackedA packed(a.data(), shape.m, shape.k);

  GemmConfig scalar;
  scalar.path = GemmPath::kScalar;
  GemmConfig auto_path;  // SIMD when the dispatcher allows it

  GemmResult result{shape};
  const double scalar_s = best_seconds(
      [&] { gemm_packed(packed, b.data(), c.data(), shape.n, false, epi,
                        scalar); },
      min_seconds);
  result.scalar_path = simd::level_name(gemm_last_level());
  const double simd_s = best_seconds(
      [&] { gemm_packed(packed, b.data(), c.data(), shape.n, false, epi,
                        auto_path); },
      min_seconds);
  result.simd_path = simd::level_name(gemm_last_level());
  result.scalar_gflops = flops / scalar_s * 1e-9;
  result.simd_gflops = flops / simd_s * 1e-9;

  // Same shape through the quantized kernel: per-channel s8 weights ×
  // u8 activation quads with the fused dequant+bias+SiLU epilogue, so
  // the ratio to simd_gflops is the honest int8 win on this shape.
  std::vector<std::int8_t> aq(shape.m * shape.k);
  std::vector<std::uint8_t> bq(shape.k * shape.n);
  for (auto& v : aq) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  for (auto& v : bq) v = static_cast<std::uint8_t>(rng.uniform_int(0, 127));
  PackedQuantA qpacked;
  qpacked.pack(aq.data(), shape.m, shape.k);
  std::vector<std::uint8_t> quads(quad_buffer_bytes(shape.k, shape.n));
  pack_u8_quads(bq.data(), shape.k, shape.n, quads.data());
  std::vector<float> row_scale(shape.m, 1.0f / 127.0f);
  QGemmEpilogue qepi;
  qepi.scale = row_scale.data();
  qepi.bias = bias.data();
  qepi.act = EpiAct::kSilu;
  const double int8_s = best_seconds(
      [&] { qgemm_packed(qpacked, quads.data(), c.data(), shape.n, qepi); },
      min_seconds);
  result.int8_path = simd::level_name(gemm_last_level());
  result.int8_gops = flops / int8_s * 1e-9;
  return result;
}

struct ModelResult {
  std::string name;
  double input_scale = 0.0;
  double scalar_ns_frame = 0.0;
  double simd_ns_frame = 0.0;
  double speedup() const noexcept {
    return simd_ns_frame > 0.0 ? scalar_ns_frame / simd_ns_frame : 0.0;
  }
};

ModelResult bench_model(models::ModelId id, double input_scale,
                        double min_seconds) {
  const nn::Graph graph = models::build_model(id, input_scale);
  nn::Engine engine(graph, 1);
  const nn::FeatShape in = graph.input_shape();
  Tensor input({1, in.c, in.h, in.w});
  Rng rng(5);
  input.init_uniform(rng, 0.0f, 1.0f);
  engine.run(input);  // warm-up: arena plan + packed panels settled

  ModelResult result;
  result.name = models::model_info(id).name;
  result.input_scale = input_scale;

  simd::set_simd_enabled(false);
  result.scalar_ns_frame =
      best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;
  simd::set_simd_enabled(true);
  result.simd_ns_frame =
      best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;
  return result;
}

std::string to_json(const std::vector<GemmResult>& gemms,
                    const std::vector<ModelResult>& model_results) {
  std::ostringstream out;
  out << "{\n  \"simd\": \"" << simd::level_name(simd::active()) << "\",\n";
  out << "  \"gemm\": [\n";
  for (std::size_t i = 0; i < gemms.size(); ++i) {
    const GemmResult& g = gemms[i];
    out << "    {\"label\": \"" << g.shape.label << "\", \"m\": " << g.shape.m
        << ", \"k\": " << g.shape.k << ", \"n\": " << g.shape.n
        << ", \"scalar_gflops\": " << g.scalar_gflops
        << ", \"simd_gflops\": " << g.simd_gflops
        << ", \"speedup\": " << g.speedup()
        << ", \"scalar_path\": \"" << g.scalar_path << "\""
        << ", \"simd_path\": \"" << g.simd_path << "\""
        << ", \"int8_gops\": " << g.int8_gops
        << ", \"int8_path\": \"" << g.int8_path << "\""
        << ", \"int8_speedup\": " << g.int8_speedup() << "}"
        << (i + 1 < gemms.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"models\": [\n";
  for (std::size_t i = 0; i < model_results.size(); ++i) {
    const ModelResult& m = model_results[i];
    out << "    {\"name\": \"" << m.name
        << "\", \"input_scale\": " << m.input_scale
        << ", \"scalar_ns_frame\": " << m.scalar_ns_frame
        << ", \"simd_ns_frame\": " << m.simd_ns_frame
        << ", \"speedup\": " << m.speedup() << "}"
        << (i + 1 < model_results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_engine_kernels",
          "packed SIMD GEMM + fused epilogues vs the scalar fallback");
  bench::add_common_flags(cli);
  cli.add_double("min-seconds", 0.2,
                 "minimum sampling time per measurement point");
  cli.add_double("input-scale", 0.25,
                 "model input scale for the ns/frame measurements");
  cli.add_string("out", "BENCH_kernels.json",
                 "machine-readable output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const double min_seconds = cli.real("min-seconds");

  // im2col shapes from the VIP models' conv families: m = out channels,
  // k = in_c·kh·kw, n = output pixels. Early layers are wide (large n),
  // late layers deep (large k); the square shape is the GEMM headline.
  const std::vector<GemmShape> shapes = {
      {"stem 3x3", 16, 27, 4096},    {"stage2 3x3", 32, 144, 1024},
      {"stage3 3x3", 64, 288, 256},  {"stage4 3x3", 128, 576, 64},
      {"head 1x1", 64, 128, 400},    {"square", 192, 192, 192},
  };

  std::vector<GemmResult> gemms;
  ResultTable gemm_table(
      std::string("Packed GEMM, fused SiLU epilogue (simd: ") +
          simd::level_name(simd::active()) + ")",
      {"shape", "m", "k", "n", "scalar GF/s", "simd GF/s", "speedup",
       "int8 GOP/s", "int8/simd", "path"});
  for (const GemmShape& shape : shapes) {
    gemms.push_back(bench_gemm_shape(shape, min_seconds));
    const GemmResult& g = gemms.back();
    gemm_table.row()
        .cell(g.shape.label)
        .cell(static_cast<double>(g.shape.m), 0)
        .cell(static_cast<double>(g.shape.k), 0)
        .cell(static_cast<double>(g.shape.n), 0)
        .cell(g.scalar_gflops, 2)
        .cell(g.simd_gflops, 2)
        .cell(g.speedup(), 2)
        .cell(g.int8_gops, 2)
        .cell(g.int8_speedup(), 2)
        .cell(g.simd_path);
  }

  const std::vector<models::ModelId> model_ids = {
      models::ModelId::kYoloV8n, models::ModelId::kTrtPose,
      models::ModelId::kMonodepth2};
  std::vector<ModelResult> model_results;
  ResultTable model_table("Engine::run per frame (input scale " +
                              format_fixed(cli.real("input-scale"), 2) + ")",
                          {"model", "scalar ms", "simd ms", "speedup"});
  for (models::ModelId id : model_ids) {
    model_results.push_back(
        bench_model(id, cli.real("input-scale"), min_seconds));
    const ModelResult& m = model_results.back();
    model_table.row()
        .cell(m.name)
        .cell(m.scalar_ns_frame * 1e-6, 2)
        .cell(m.simd_ns_frame * 1e-6, 2)
        .cell(m.speedup(), 2);
  }

  bench::emit(cli, {gemm_table, model_table});

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(gemms, model_results);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  return 0;
}
