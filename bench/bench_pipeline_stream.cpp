// Streaming VIP pipeline under deadline pressure (extends §4.2.3/4.2.4).
//
// Where bench_pipeline_e2e composes stage latencies analytically, this
// bench actually runs the three Ocularone models (vest detection +
// Bodypose + Monodepth2) as a concurrent stage chain: worker threads,
// bounded inter-stage queues, a configurable backpressure policy and a
// per-frame deadline matching the drone's 30 FPS feed. Queue-induced
// latency and frame drops — invisible to the closed-form model — show
// up here, per device and per drop policy, with full per-stage
// telemetry for one chosen device.
//
// The modelled timeline is replayed at `time-scale` real seconds per
// stream second (default 0.05 = 20x fast-forward); all reported
// numbers are in stream-clock ms.
#include <memory>

#include "bench_common.hpp"
#include "models/registry.hpp"
#include "runtime/streaming_pipeline.hpp"

using namespace ocb;
using namespace ocb::runtime;
using namespace ocb::models;

namespace {

DropPolicy parse_policy(const std::string& name) {
  if (name == "block") return DropPolicy::kBlock;
  if (name == "drop-oldest") return DropPolicy::kDropOldest;
  if (name == "drop-newest") return DropPolicy::kDropNewest;
  throw InvalidArgument("unknown drop policy: " + name +
                        " (want block|drop-oldest|drop-newest)");
}

PipelineBuilder make_builder(const devsim::DeviceSpec& dev,
                             std::uint64_t seed) {
  PipelineBuilder builder;
  for (ModelId id :
       {ModelId::kYoloV8n, ModelId::kTrtPose, ModelId::kMonodepth2})
    builder.stage(
        std::make_unique<SimulatedExecutor>(profile_model(id), dev, seed++));
  return builder;
}

// Real inference on this machine's nn::Engine (packed SIMD kernels,
// fused epilogues, arena scratch) instead of modelled latency — the
// end-to-end check that kernel-layer speedups survive the queueing
// runtime. Models run at a reduced input scale to keep CPU frame times
// in the same regime as the modelled edge devices.
PipelineBuilder make_host_builder(double input_scale, std::uint64_t seed) {
  PipelineBuilder builder;
  for (ModelId id :
       {ModelId::kYoloV8n, ModelId::kTrtPose, ModelId::kMonodepth2})
    builder.stage(std::make_unique<HostExecutor>(
        build_model(id, input_scale), model_info(id).name, seed++));
  return builder;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_pipeline_stream",
          "VIP pipeline on the streaming runtime: queues, drops, deadlines");
  bench::add_common_flags(cli);
  cli.add_int("frames", 600, "frames to stream per run");
  cli.add_double("fps", 30.0, "camera feed rate (paper: 30 FPS drone feed)");
  cli.add_double("deadline-ms", 1000.0 / 30.0,
                 "per-frame end-to-end budget on the stream clock");
  cli.add_int("queue-capacity", 4, "bounded inter-stage queue depth");
  cli.add_string("policy", "drop-oldest",
                 "backpressure policy: block|drop-oldest|drop-newest");
  cli.add_double("timeout-ms", 500.0, "stage watchdog budget (0 disables)");
  cli.add_double("time-scale", 0.05,
                 "real seconds per stream second (smaller = faster replay)");
  cli.add_string("device", "o-agx", "device for the detailed telemetry report");
  cli.add_int("seed", 7, "jitter seed");
  cli.add_flag("json", "emit the detailed report as JSON too");
  cli.add_flag("host",
               "run real nn::Engine inference on this machine instead of "
               "modelled device latency");
  cli.add_double("host-scale", 0.25,
                 "model input scale in --host mode (1.0 = deployment size)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const int frames = static_cast<int>(cli.integer("frames"));
  const double fps = cli.real("fps");
  const double deadline = cli.real("deadline-ms");
  const DropPolicy policy = parse_policy(cli.string("policy"));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed"));

  if (cli.flag("host")) {
    // Real compute: no occupancy emulation, no time scaling — the
    // stream clock is the wall clock.
    auto pipeline = make_host_builder(cli.real("host-scale"), seed)
                        .discipline(Discipline::kSequential)
                        .deadline_ms(deadline)
                        .queue_capacity(static_cast<std::size_t>(
                            cli.integer("queue-capacity")))
                        .drop_policy(policy)
                        .stage_timeout_ms(cli.real("timeout-ms"))
                        .source_fps(fps)
                        .build_streaming();
    SyntheticSource source(frames, fps);
    const StreamReport report = pipeline->run(source);

    ResultTable table("Streaming VIP pipeline on host engine (scale " +
                          format_fixed(cli.real("host-scale"), 2) + ", " +
                          cli.string("policy") + ")",
                      {"completed", "dropped %", "late %", "e2e p50 ms",
                       "e2e p95 ms", "fps"});
    table.row()
        .cell(static_cast<double>(report.frames_completed), 0)
        .cell(report.drop_rate() * 100.0, 1)
        .cell(report.deadline_miss_rate() * 100.0, 1)
        .cell(report.e2e_ms.p50(), 1)
        .cell(report.e2e_ms.p95(), 1)
        .cell(report.throughput_fps, 1);
    bench::emit(cli, {table});
    std::cout << "per-stage telemetry (host engine):\n"
              << report.to_text() << '\n';
    if (cli.flag("json")) std::cout << report.to_json() << '\n';
    return 0;
  }

  const auto run_stream = [&](const devsim::DeviceSpec& dev,
                              DropPolicy drop_policy) {
    auto pipeline =
        make_builder(dev, seed)
            .discipline(Discipline::kSequential)
            .deadline_ms(deadline)
            .queue_capacity(static_cast<std::size_t>(
                cli.integer("queue-capacity")))
            .drop_policy(drop_policy)
            .stage_timeout_ms(cli.real("timeout-ms"))
            .emulate_occupancy()
            .time_scale(cli.real("time-scale"))
            .source_fps(fps)
            .build_streaming();
    SyntheticSource source(frames, fps);
    return pipeline->run(source);
  };

  // --- per-device streaming stats under the chosen policy ------------
  ResultTable table("Streaming VIP pipeline (" + cli.string("policy") +
                        ", " + format_fixed(fps, 0) + " FPS feed)",
                    {"device", "completed", "dropped %", "late %",
                     "e2e p50 ms", "e2e p95 ms", "e2e p99 ms", "fps"});
  for (const devsim::DeviceSpec& dev : devsim::device_table()) {
    const StreamReport report = run_stream(dev, policy);
    table.row()
        .cell(dev.short_name)
        .cell(static_cast<double>(report.frames_completed), 0)
        .cell(report.drop_rate() * 100.0, 1)
        .cell(report.deadline_miss_rate() * 100.0, 1)
        .cell(report.e2e_ms.p50(), 1)
        .cell(report.e2e_ms.p95(), 1)
        .cell(report.e2e_ms.p99(), 1)
        .cell(report.throughput_fps, 1);
  }

  // --- drop-policy comparison on the detailed device -----------------
  const devsim::DeviceSpec* detail_dev = nullptr;
  for (const devsim::DeviceSpec& dev : devsim::device_table())
    if (dev.short_name == cli.string("device")) detail_dev = &dev;
  OCB_CHECK_MSG(detail_dev != nullptr,
                "unknown device: " + cli.string("device"));

  ResultTable policies("Backpressure policies on " + detail_dev->short_name,
                       {"policy", "completed", "dropped %", "late %",
                        "e2e p95 ms", "fps"});
  StreamReport detail;
  for (DropPolicy p : {DropPolicy::kBlock, DropPolicy::kDropOldest,
                       DropPolicy::kDropNewest}) {
    const StreamReport report = run_stream(*detail_dev, p);
    policies.row()
        .cell(drop_policy_name(p))
        .cell(static_cast<double>(report.frames_completed), 0)
        .cell(report.drop_rate() * 100.0, 1)
        .cell(report.deadline_miss_rate() * 100.0, 1)
        .cell(report.e2e_ms.p95(), 1)
        .cell(report.throughput_fps, 1);
    if (p == policy) detail = report;
  }

  bench::emit(cli, {table, policies});

  std::cout << "per-stage telemetry (" << detail_dev->short_name << ", "
            << cli.string("policy") << "):\n"
            << detail.to_text() << '\n';
  if (cli.flag("json")) std::cout << detail.to_json() << '\n';
  return 0;
}
