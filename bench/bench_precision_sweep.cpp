// Precision-vs-accuracy sweep: the INT8 inference path against FP32.
//
// Three views, mirroring how the paper trades accuracy for latency on
// edge GPUs (§4.3's TensorRT builds quantize the same way):
//   1. Engine::run ns/frame for the Ocularone VIP models in FP32 and
//      INT8 (post-calibration), measured on this host.
//   2. Roofline projections of the same models on the paper's Jetson
//      devices with the per-device INT8 speedup applied to GEMM ops.
//   3. Trained MiniYolo variants evaluated through the Engine in both
//      precisions on the diverse test set — precision / recall / F1 /
//      accuracy and their INT8 deltas.
// Emits BENCH_precision_sweep.json for scripts/check_bench_regression.py.
#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_accuracy_common.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "devsim/roofline.hpp"
#include "eval/matcher.hpp"
#include "eval/report.hpp"
#include "models/registry.hpp"
#include "nn/engine.hpp"
#include "trainer/detector_trainer.hpp"

using namespace ocb;

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double best_seconds(F&& body, double min_seconds) {
  double best = 1e300;
  double total = 0.0;
  int iters = 0;
  while (total < min_seconds || iters < 2) {
    const auto t0 = Clock::now();
    body();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, dt);
    total += dt;
    ++iters;
  }
  return best;
}

// --- 1. measured engine latency ---------------------------------------

struct LatencyResult {
  std::string name;
  double fp32_ns_frame = 0.0;
  double int8_ns_frame = 0.0;
  double speedup() const noexcept {
    return int8_ns_frame > 0.0 ? fp32_ns_frame / int8_ns_frame : 0.0;
  }
};

LatencyResult bench_engine_precision(models::ModelId id, double input_scale,
                                     double min_seconds) {
  const nn::Graph graph = models::build_model(id, input_scale);
  nn::Engine engine(graph, 1);
  const nn::FeatShape in = graph.input_shape();

  Rng rng(11);
  std::vector<Tensor> frames;
  for (int i = 0; i < 3; ++i) {
    Tensor t({1, in.c, in.h, in.w});
    t.init_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(t));
  }
  Tensor input({1, in.c, in.h, in.w});
  input.init_uniform(rng, 0.0f, 1.0f);

  engine.calibrate(frames);  // also serves as FP32 warm-up
  engine.prepare({});        // planner-selected fp32 kernels

  LatencyResult result;
  result.name = models::model_info(id).name;
  result.fp32_ns_frame =
      best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;

  engine.prepare({.precision = nn::Precision::kInt8});
  engine.run(input);  // warm-up: int8 panels + arena plan settled
  result.int8_ns_frame =
      best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;
  return result;
}

// --- 2. devsim roofline projection ------------------------------------

struct ProjectionResult {
  std::string device;
  std::string model;
  double fp32_ms = 0.0;
  double int8_ms = 0.0;
  double speedup() const noexcept {
    return int8_ms > 0.0 ? fp32_ms / int8_ms : 0.0;
  }
};

// --- 3. trained-detector accuracy in both precisions ------------------

struct AccuracyPair {
  std::string variant;
  eval::Metrics fp32;
  eval::Metrics int8;
};

eval::Metrics evaluate_engine(const models::MiniYolo& model,
                              nn::Engine& engine,
                              const dataset::DatasetGenerator& generator,
                              const std::vector<dataset::Sample>& samples,
                              const char* title) {
  eval::Report report(title);
  for (const dataset::Sample& sample : samples) {
    const dataset::RenderedFrame frame = generator.render(sample);
    std::vector<Annotation> truth;
    if (frame.vest_visible) truth.push_back(frame.vest);
    const auto detections = model.detect_with_engine(engine, frame.image);
    const eval::MatchResult result =
        eval::match_detections(detections, truth, 0.5f);
    const bool correct =
        result.false_positives == 0 && result.false_negatives == 0;
    report.add(dataset::category_name(sample.category), result, correct);
  }
  return report.overall();
}

std::string json_metrics(const eval::Metrics& m) {
  std::ostringstream out;
  out << "{\"precision\": " << m.precision << ", \"recall\": " << m.recall
      << ", \"f1\": " << m.f1 << ", \"accuracy\": " << m.accuracy
      << ", \"images\": " << m.images << "}";
  return out.str();
}

std::string to_json(const std::vector<LatencyResult>& latency,
                    const std::vector<ProjectionResult>& projections,
                    const std::vector<AccuracyPair>& accuracy) {
  std::ostringstream out;
  out << "{\n  \"latency\": [\n";
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const LatencyResult& r = latency[i];
    out << "    {\"model\": \"" << r.name
        << "\", \"fp32_ns_frame\": " << r.fp32_ns_frame
        << ", \"int8_ns_frame\": " << r.int8_ns_frame
        << ", \"int8_speedup\": " << r.speedup() << "}"
        << (i + 1 < latency.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"devsim\": [\n";
  for (std::size_t i = 0; i < projections.size(); ++i) {
    const ProjectionResult& p = projections[i];
    out << "    {\"device\": \"" << p.device << "\", \"model\": \""
        << p.model << "\", \"fp32_ms\": " << p.fp32_ms
        << ", \"int8_ms\": " << p.int8_ms
        << ", \"int8_speedup\": " << p.speedup() << "}"
        << (i + 1 < projections.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"accuracy\": [\n";
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyPair& a = accuracy[i];
    out << "    {\"variant\": \"" << a.variant
        << "\", \"fp32\": " << json_metrics(a.fp32)
        << ", \"int8\": " << json_metrics(a.int8)
        << ", \"delta_accuracy\": " << a.int8.accuracy - a.fp32.accuracy
        << ", \"delta_f1\": " << a.int8.f1 - a.fp32.f1 << "}"
        << (i + 1 < accuracy.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_precision_sweep",
          "INT8 vs FP32: engine latency, device projections, and trained "
          "detector accuracy");
  bench::add_accuracy_flags(cli);
  cli.add_double("min-seconds", 0.2,
                 "minimum sampling time per measurement point");
  cli.add_double("input-scale", 0.25,
                 "model input scale for the ns/frame measurements");
  cli.add_flag("skip-training",
               "skip the trained-detector accuracy sweep (latency only)");
  cli.add_string("out", "BENCH_precision_sweep.json",
                 "machine-readable output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);
  const double min_seconds = cli.real("min-seconds");

  // 1. Measured FP32 vs INT8 Engine::run on the VIP models.
  const std::vector<models::ModelId> model_ids = {
      models::ModelId::kYoloV8n, models::ModelId::kYoloV11n,
      models::ModelId::kTrtPose, models::ModelId::kMonodepth2};
  std::vector<LatencyResult> latency;
  ResultTable latency_table(
      "Engine::run FP32 vs INT8 (input scale " +
          format_fixed(cli.real("input-scale"), 2) + ")",
      {"model", "fp32 ms", "int8 ms", "speedup"});
  for (models::ModelId id : model_ids) {
    latency.push_back(
        bench_engine_precision(id, cli.real("input-scale"), min_seconds));
    const LatencyResult& r = latency.back();
    latency_table.row()
        .cell(r.name)
        .cell(r.fp32_ns_frame * 1e-6, 2)
        .cell(r.int8_ns_frame * 1e-6, 2)
        .cell(r.speedup(), 2);
  }

  // 2. Roofline projection on the paper's devices.
  std::vector<ProjectionResult> projections;
  ResultTable devsim_table("Roofline projection FP32 vs INT8 (full-scale "
                           "inputs, batch 1)",
                           {"device", "model", "fp32 ms", "int8 ms",
                            "speedup"});
  devsim::RooflineOptions fp32_opts;
  devsim::RooflineOptions int8_opts;
  int8_opts.precision = devsim::Precision::kInt8;
  for (devsim::DeviceId device : devsim::edge_devices()) {
    const devsim::DeviceSpec& spec = devsim::device_spec(device);
    for (models::ModelId id : model_ids) {
      const nn::ModelProfile profile = models::profile_model(id);
      ProjectionResult p;
      p.device = spec.name;
      p.model = models::model_info(id).name;
      p.fp32_ms = devsim::model_latency_ms(profile, spec, fp32_opts);
      p.int8_ms = devsim::model_latency_ms(profile, spec, int8_opts);
      projections.push_back(p);
      devsim_table.row()
          .cell(p.device)
          .cell(p.model)
          .cell(p.fp32_ms, 2)
          .cell(p.int8_ms, 2)
          .cell(p.speedup(), 2);
    }
  }

  // 3. Trained detectors through the engine in both precisions.
  std::vector<AccuracyPair> accuracy;
  ResultTable accuracy_table(
      "Trained MiniYolo via Engine: FP32 vs INT8 (diverse test set)",
      {"variant", "prec fp32", "prec int8", "rec fp32", "rec int8",
       "F1 fp32", "F1 int8", "acc fp32", "acc int8", "Δacc"});
  if (!cli.flag("skip-training")) {
    const trainer::AccuracyExperimentConfig config =
        bench::accuracy_config(cli);
    dataset::DatasetConfig dcfg;
    dcfg.scale = config.dataset_scale;
    dcfg.image_width = config.image_width;
    dcfg.image_height = config.image_height;
    dcfg.seed = config.seed;
    const dataset::DatasetGenerator generator(dcfg);
    Rng rng(hash_combine(config.seed, 0x18A7ULL));
    const dataset::SplitResult split =
        dataset::curated_split(generator, config.curated_fraction, rng);
    std::vector<dataset::Sample> test = split.test_diverse;
    if (config.eval_cap > 0 &&
        test.size() > static_cast<std::size_t>(config.eval_cap))
      test = dataset::subsample(
          test, static_cast<std::size_t>(config.eval_cap), rng);

    // Calibration frames: letterboxed renders of training samples, the
    // same distribution the detector sees at deployment.
    const std::vector<dataset::Sample> calib_samples = dataset::subsample(
        split.train, std::min<std::size_t>(split.train.size(), 8), rng);
    const trainer::TrainCorpus calib_corpus(generator, calib_samples,
                                            config.train.input_size);
    std::vector<Tensor> calib_frames;
    for (std::size_t i = 0; i < calib_corpus.size(); ++i)
      calib_frames.push_back(calib_corpus.image(i));

    const trainer::DetectorTrainer trainer(generator, config.train);
    for (models::YoloFamily family :
         {models::YoloFamily::kV8, models::YoloFamily::kV11}) {
      for (models::YoloSize size :
           {models::YoloSize::kNano, models::YoloSize::kMedium}) {
        const models::MiniYolo model =
            trainer.train(family, size, split.train, split.val);
        nn::Engine engine(model.export_graph(), 1);
        model.export_weights(engine);
        engine.calibrate(calib_frames);

        AccuracyPair pair;
        pair.variant = bench::variant_name(family, size);
        pair.fp32 =
            evaluate_engine(model, engine, generator, test, "fp32");
        engine.prepare({.precision = nn::Precision::kInt8});
        pair.int8 =
            evaluate_engine(model, engine, generator, test, "int8");
        accuracy.push_back(pair);
        accuracy_table.row()
            .cell(pair.variant)
            .cell(pair.fp32.precision, 3)
            .cell(pair.int8.precision, 3)
            .cell(pair.fp32.recall, 3)
            .cell(pair.int8.recall, 3)
            .cell(pair.fp32.f1, 3)
            .cell(pair.int8.f1, 3)
            .cell(pair.fp32.accuracy, 3)
            .cell(pair.int8.accuracy, 3)
            .cell(pair.int8.accuracy - pair.fp32.accuracy, 3);
      }
    }
  }

  bench::emit(cli, {latency_table, devsim_table, accuracy_table});

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(latency, projections, accuracy);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  return 0;
}
