// Precision-vs-accuracy sweep: the compressed inference paths vs FP32.
//
// Four views, mirroring how the paper trades accuracy for latency on
// edge GPUs (§4.3's TensorRT builds quantize the same way):
//   1. Engine::run ns/frame for the Ocularone VIP models in FP32 and
//      INT8 (post-calibration), measured on this host.
//   2. Roofline projections of the same models on the paper's Jetson
//      devices with the per-device INT8 speedup applied to GEMM ops.
//   3. Trained MiniYolo variants evaluated through the Engine in both
//      precisions on the diverse test set — precision / recall / F1 /
//      accuracy and their INT8 deltas.
//   4. The accuracy-vs-speed Pareto frontier over the full compression
//      grid (fp16 storage, N:M structured sparsity at 25/50/75%, INT8,
//      and their combinations): micro-kernel gate points (sparse vs
//      dense packed GEMM, fp16 vs fp32 GEMV), sparse-vs-masked-dense
//      numeric equivalence at engine level, and per-model latency (+
//      trained-detector accuracy) for every PlanRequest variant.
// Emits BENCH_precision_sweep.json and BENCH_pareto.json for
// scripts/check_bench_regression.py (the latter via its `pareto` mode).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_accuracy_common.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "devsim/roofline.hpp"
#include "eval/matcher.hpp"
#include "eval/report.hpp"
#include "models/registry.hpp"
#include "nn/engine.hpp"
#include "nn/prune.hpp"
#include "tensor/gemm.hpp"
#include "tensor/sgemm_sparse.hpp"
#include "tensor/simd.hpp"
#include "trainer/detector_trainer.hpp"

using namespace ocb;

namespace {

using Clock = std::chrono::steady_clock;

template <typename F>
double best_seconds(F&& body, double min_seconds) {
  double best = 1e300;
  double total = 0.0;
  int iters = 0;
  while (total < min_seconds || iters < 2) {
    const auto t0 = Clock::now();
    body();
    const double dt = std::chrono::duration<double>(Clock::now() - t0).count();
    best = std::min(best, dt);
    total += dt;
    ++iters;
  }
  return best;
}

// --- 1. measured engine latency ---------------------------------------

struct LatencyResult {
  std::string name;
  double fp32_ns_frame = 0.0;
  double int8_ns_frame = 0.0;
  double speedup() const noexcept {
    return int8_ns_frame > 0.0 ? fp32_ns_frame / int8_ns_frame : 0.0;
  }
};

LatencyResult bench_engine_precision(models::ModelId id, double input_scale,
                                     double min_seconds) {
  const nn::Graph graph = models::build_model(id, input_scale);
  nn::Engine engine(graph, 1);
  const nn::FeatShape in = graph.input_shape();

  Rng rng(11);
  std::vector<Tensor> frames;
  for (int i = 0; i < 3; ++i) {
    Tensor t({1, in.c, in.h, in.w});
    t.init_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(t));
  }
  Tensor input({1, in.c, in.h, in.w});
  input.init_uniform(rng, 0.0f, 1.0f);

  engine.calibrate(frames);  // also serves as FP32 warm-up
  engine.prepare({});        // planner-selected fp32 kernels

  LatencyResult result;
  result.name = models::model_info(id).name;
  result.fp32_ns_frame =
      best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;

  engine.prepare({.precision = nn::Precision::kInt8});
  engine.run(input);  // warm-up: int8 panels + arena plan settled
  result.int8_ns_frame =
      best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;
  return result;
}

// --- 2. devsim roofline projection ------------------------------------

struct ProjectionResult {
  std::string device;
  std::string model;
  double fp32_ms = 0.0;
  double int8_ms = 0.0;
  double speedup() const noexcept {
    return int8_ms > 0.0 ? fp32_ms / int8_ms : 0.0;
  }
};

// --- 3. trained-detector accuracy in both precisions ------------------

struct AccuracyPair {
  std::string variant;
  eval::Metrics fp32;
  eval::Metrics int8;
};

eval::Metrics evaluate_engine(const models::MiniYolo& model,
                              nn::Engine& engine,
                              const dataset::DatasetGenerator& generator,
                              const std::vector<dataset::Sample>& samples,
                              const char* title) {
  eval::Report report(title);
  for (const dataset::Sample& sample : samples) {
    const dataset::RenderedFrame frame = generator.render(sample);
    std::vector<Annotation> truth;
    if (frame.vest_visible) truth.push_back(frame.vest);
    const auto detections = model.detect_with_engine(engine, frame.image);
    const eval::MatchResult result =
        eval::match_detections(detections, truth, 0.5f);
    const bool correct =
        result.false_positives == 0 && result.false_negatives == 0;
    report.add(dataset::category_name(sample.category), result, correct);
  }
  return report.overall();
}

std::string json_metrics(const eval::Metrics& m) {
  std::ostringstream out;
  out << "{\"precision\": " << m.precision << ", \"recall\": " << m.recall
      << ", \"f1\": " << m.f1 << ", \"accuracy\": " << m.accuracy
      << ", \"images\": " << m.images << "}";
  return out.str();
}

// --- 4. Pareto frontier: kernel gates, equivalence, variant sweep -----

/// One sparse-vs-dense packed-GEMM measurement on a conv-heavy shape.
/// `dense_ns` times gemm_packed over the *masked* weights, so both
/// kernels compute the identical output and the speedup isolates the
/// skipped inner-loop work.
struct SparseGatePoint {
  std::string label;
  int sparsity_pct = 0;        ///< nominal pruned percent (N:M)
  double mask_density = 0.0;   ///< measured surviving fraction
  double dense_ns = 0.0;
  double sparse_ns = 0.0;
  double speedup() const noexcept {
    return sparse_ns > 0.0 ? dense_ns / sparse_ns : 0.0;
  }
};

/// One fp16-storage-vs-fp32 packed-GEMM measurement on a
/// bandwidth-bound (GEMV-like) shape.
struct HalfGatePoint {
  std::string label;
  double dense_ns = 0.0;
  double half_ns = 0.0;
  double speedup() const noexcept {
    return half_ns > 0.0 ? dense_ns / half_ns : 0.0;
  }
};

/// Sparse engine vs hand-masked dense twin (same seed): the sparse
/// kernels are defined to reproduce a dense run over magnitude-masked
/// weights, so max|diff| is pure summation-order noise.
struct EquivalenceResult {
  std::string model;
  double max_abs_diff = 0.0;
  int sparse_nodes = 0;
};

/// One (model, PlanRequest variant) point on the frontier. Accuracy is
/// attached only for the trained-detector rows; `gated` marks the
/// variants the regression checker holds to the accuracy budget.
struct FrontierPoint {
  std::string model;
  std::string variant;
  double ns_frame = 0.0;
  double speedup_vs_fp32 = 1.0;
  int sparse_nodes = 0;
  int fp16_nodes = 0;
  int quant_nodes = 0;
  bool gated = false;
  bool has_accuracy = false;
  double accuracy = 0.0;
  double delta_accuracy_pt = 0.0;
};

nn::SparsityConfig nm_config(int keep, int of) {
  nn::SparsityConfig cfg;
  cfg.scheme = nn::SparsityScheme::kNm;
  cfg.nm_n = keep;
  cfg.nm_m = of;
  cfg.budget = static_cast<float>(of - keep) / static_cast<float>(of);
  return cfg;
}

struct Variant {
  const char* name;
  nn::PlanRequest request;
  bool gated;  ///< accuracy-budget-gated by check_bench_regression.py
};

/// The compression grid every frontier model runs: plain precisions,
/// the three N:M sparsity levels, and the combined storage formats.
/// fp16 and nm50 are the "shippable" points the accuracy gate holds to
/// ±1.5 pt; nm25/nm75 chart the rest of the frontier.
std::vector<Variant> pareto_variants() {
  std::vector<Variant> variants;
  variants.push_back({"fp32", nn::PlanRequest{}, false});

  nn::PlanRequest fp16;
  fp16.precision = nn::Precision::kFp16;
  variants.push_back({"fp16", fp16, true});

  nn::PlanRequest nm25;
  nm25.sparsity = nm_config(3, 4);
  variants.push_back({"nm25", nm25, true});

  nn::PlanRequest nm50;
  nm50.sparsity = nm_config(2, 4);
  variants.push_back({"nm50", nm50, true});

  nn::PlanRequest nm75;
  nm75.sparsity = nm_config(1, 4);
  variants.push_back({"nm75", nm75, false});

  nn::PlanRequest nm50_fp16;
  nm50_fp16.precision = nn::Precision::kFp16;
  nm50_fp16.sparsity = nm_config(2, 4);
  variants.push_back({"nm50-fp16", nm50_fp16, true});

  nn::PlanRequest int8;
  int8.precision = nn::Precision::kInt8;
  variants.push_back({"int8", int8, false});

  nn::PlanRequest nm50_int8;
  nm50_int8.precision = nn::Precision::kInt8;
  nm50_int8.sparsity = nm_config(2, 4);
  variants.push_back({"nm50-int8", nm50_int8, false});
  return variants;
}

std::vector<float> random_values(std::size_t count, Rng& rng) {
  std::vector<float> values(count);
  for (float& v : values) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return values;
}

SparseGatePoint bench_sparse_gate(std::size_t m, std::size_t k,
                                  std::size_t n, int keep, int of,
                                  double min_seconds) {
  Rng rng(hash_combine(m * 1315423911u + k, n * 4u + keep));
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> b = random_values(k * n, rng);
  std::vector<float> c(m * n, 0.0f);

  const nn::SparsityConfig cfg = nm_config(keep, of);
  const auto mask = nn::magnitude_mask(a.data(), m, k, cfg);
  std::vector<float> masked = a;
  nn::apply_mask(masked.data(), mask.data(), masked.size());

  const PackedA dense(masked.data(), m, k);
  PackedSparseA sparse;
  sparse.pack(a.data(), m, k, mask.data());

  SparseGatePoint point;
  std::ostringstream label;
  label << "conv " << m << "x" << k << "x" << n << " " << keep << ":" << of;
  point.label = label.str();
  point.sparsity_pct = 100 * (of - keep) / of;
  point.mask_density = nn::mask_density(mask.data(), mask.size());
  point.dense_ns =
      best_seconds([&] { gemm_packed(dense, b.data(), c.data(), n); },
                   min_seconds) *
      1e9;
  point.sparse_ns =
      best_seconds([&] { gemm_packed_sparse(sparse, b.data(), c.data(), n); },
                   min_seconds) *
      1e9;
  return point;
}

HalfGatePoint bench_half_gate(std::size_t m, std::size_t k, std::size_t n,
                              double min_seconds) {
  Rng rng(hash_combine(m, k * 8u + n));
  const std::vector<float> a = random_values(m * k, rng);
  const std::vector<float> b = random_values(k * n, rng);
  std::vector<float> c(m * n, 0.0f);

  const PackedA dense(a.data(), m, k);
  PackedHalfA half;
  half.pack(a.data(), m, k, HalfFormat::kFp16);

  HalfGatePoint point;
  std::ostringstream label;
  label << (n == 1 ? "gemv " : "conv ") << m << "x" << k << "x" << n;
  point.label = label.str();
  point.dense_ns =
      best_seconds([&] { gemm_packed(dense, b.data(), c.data(), n); },
                   min_seconds) *
      1e9;
  point.half_ns =
      best_seconds([&] { gemm_packed_half(half, b.data(), c.data(), n); },
                   min_seconds) *
      1e9;
  return point;
}

EquivalenceResult measure_equivalence(models::ModelId id,
                                      double input_scale) {
  const nn::Graph graph = models::build_model(id, input_scale);
  nn::Engine sparse(graph, 7);
  nn::PlanRequest request;
  request.sparsity = nm_config(2, 4);
  const nn::ExecutionPlan& plan = sparse.prepare(request);

  // Twin with the same seed, hand-masked the way the sparse packs are.
  nn::Engine masked(graph, 7);
  for (int node = 0; node < graph.node_count(); ++node) {
    const nn::Node& nd = graph.node(node);
    if (nd.kind != nn::OpKind::kConv && nd.kind != nn::OpKind::kLinear)
      continue;
    Tensor& w = masked.weight(node);
    const std::size_t rows = static_cast<std::size_t>(nd.out_c);
    const std::size_t cols = w.numel() / rows;
    const auto mask = nn::magnitude_mask(w.data(), rows, cols,
                                         request.sparsity);
    nn::apply_mask(w.data(), mask.data(), w.numel());
  }
  masked.prepare({});

  const nn::FeatShape in = graph.input_shape();
  Tensor input({1, in.c, in.h, in.w});
  Rng rng(29);
  input.init_uniform(rng, 0.0f, 1.0f);

  const auto& got = sparse.run(input);
  const auto& want = masked.run(input);
  EquivalenceResult result;
  result.model = models::model_info(id).name;
  result.sparse_nodes = plan.sparse_nodes;
  for (std::size_t o = 0; o < want.size() && o < got.size(); ++o) {
    const float* g = got[o].data();
    const float* w = want[o].data();
    for (std::size_t i = 0; i < want[o].numel(); ++i)
      result.max_abs_diff = std::max(
          result.max_abs_diff, static_cast<double>(std::fabs(g[i] - w[i])));
  }
  return result;
}

/// Synthetic GEMV-headed model: a conv stage large enough to prune
/// plus the 4096→512 linear head whose weight panel is firmly
/// bandwidth-bound — the shape the planner must move to half storage.
/// Guarantees the frontier always has observable sparse AND fp16 rows
/// even when the VIP detector bodies are conv-only.
nn::Graph mlp_head_graph() {
  nn::Graph g;
  const int in = g.input(64, 8, 8);
  const int c1 = g.conv(in, 256, 3, 1, 1, nn::Act::kLeakyRelu, "c1");
  const int pool = g.global_avg_pool(c1, "gap");
  const int fc1 = g.linear(pool, 4096, nn::Act::kRelu, "fc1");
  const int fc2 = g.linear(fc1, 512, nn::Act::kNone, "fc2");
  g.mark_output(fc2);
  return g;
}

/// Latency of every variant on one engine; the fp32 variant anchors
/// the speedup column. Calibrates up front so INT8 variants plan from
/// realistic ranges.
void bench_frontier_latency(const std::string& name, const nn::Graph& graph,
                            const std::vector<Variant>& variants,
                            double min_seconds,
                            std::vector<FrontierPoint>& out,
                            ResultTable& table) {
  nn::Engine engine(graph, 1);
  const nn::FeatShape in = graph.input_shape();
  Rng rng(11);
  std::vector<Tensor> frames;
  for (int i = 0; i < 3; ++i) {
    Tensor t({1, in.c, in.h, in.w});
    t.init_uniform(rng, 0.0f, 1.0f);
    frames.push_back(std::move(t));
  }
  Tensor input({1, in.c, in.h, in.w});
  input.init_uniform(rng, 0.0f, 1.0f);
  engine.calibrate(frames);

  double fp32_ns = 0.0;
  for (const Variant& variant : variants) {
    const nn::ExecutionPlan& plan = engine.prepare(variant.request);
    FrontierPoint point;
    point.model = name;
    point.variant = variant.name;
    point.gated = variant.gated;
    point.sparse_nodes = plan.sparse_nodes;
    point.fp16_nodes = plan.fp16_nodes;
    point.quant_nodes = plan.quant_nodes;
    engine.run(input);  // warm-up: packs + arena settled
    point.ns_frame =
        best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;
    if (std::string(variant.name) == "fp32") fp32_ns = point.ns_frame;
    point.speedup_vs_fp32 =
        point.ns_frame > 0.0 && fp32_ns > 0.0 ? fp32_ns / point.ns_frame
                                              : 1.0;
    table.row()
        .cell(name)
        .cell(variant.name)
        .cell(point.ns_frame * 1e-6, 3)
        .cell(point.speedup_vs_fp32, 2)
        .cell(static_cast<std::int64_t>(point.sparse_nodes))
        .cell(static_cast<std::int64_t>(point.fp16_nodes))
        .cell(static_cast<std::int64_t>(point.quant_nodes))
        .cell("-")
        .cell("-");
    out.push_back(std::move(point));
  }
}

std::string to_pareto_json(const std::vector<SparseGatePoint>& sparse_gates,
                           const std::vector<HalfGatePoint>& half_gates,
                           const EquivalenceResult& equivalence,
                           const std::vector<FrontierPoint>& frontier) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"pareto\",\n  \"simd\": \""
      << simd::level_name(simd::active()) << "\",\n";
  out << "  \"kernel_gates\": {\n    \"sparse\": [\n";
  for (std::size_t i = 0; i < sparse_gates.size(); ++i) {
    const SparseGatePoint& p = sparse_gates[i];
    out << "      {\"label\": \"" << p.label
        << "\", \"sparsity_pct\": " << p.sparsity_pct
        << ", \"mask_density\": " << p.mask_density
        << ", \"dense_ns\": " << p.dense_ns
        << ", \"sparse_ns\": " << p.sparse_ns
        << ", \"speedup\": " << p.speedup() << "}"
        << (i + 1 < sparse_gates.size() ? "," : "") << "\n";
  }
  out << "    ],\n    \"fp16\": [\n";
  for (std::size_t i = 0; i < half_gates.size(); ++i) {
    const HalfGatePoint& p = half_gates[i];
    out << "      {\"label\": \"" << p.label
        << "\", \"dense_ns\": " << p.dense_ns
        << ", \"half_ns\": " << p.half_ns
        << ", \"speedup\": " << p.speedup() << "}"
        << (i + 1 < half_gates.size() ? "," : "") << "\n";
  }
  out << "    ]\n  },\n";
  out << "  \"equivalence\": {\"model\": \"" << equivalence.model
      << "\", \"max_abs_diff\": " << equivalence.max_abs_diff
      << ", \"sparse_nodes\": " << equivalence.sparse_nodes << "},\n";
  out << "  \"frontier\": [\n";
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const FrontierPoint& p = frontier[i];
    out << "    {\"model\": \"" << p.model << "\", \"variant\": \""
        << p.variant << "\", \"ns_frame\": " << p.ns_frame
        << ", \"speedup_vs_fp32\": " << p.speedup_vs_fp32
        << ", \"sparse_nodes\": " << p.sparse_nodes
        << ", \"fp16_nodes\": " << p.fp16_nodes
        << ", \"quant_nodes\": " << p.quant_nodes
        << ", \"gated\": " << (p.gated ? "true" : "false");
    if (p.has_accuracy)
      out << ", \"accuracy\": " << p.accuracy
          << ", \"delta_accuracy_pt\": " << p.delta_accuracy_pt;
    out << "}" << (i + 1 < frontier.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

std::string to_json(const std::vector<LatencyResult>& latency,
                    const std::vector<ProjectionResult>& projections,
                    const std::vector<AccuracyPair>& accuracy) {
  std::ostringstream out;
  out << "{\n  \"latency\": [\n";
  for (std::size_t i = 0; i < latency.size(); ++i) {
    const LatencyResult& r = latency[i];
    out << "    {\"model\": \"" << r.name
        << "\", \"fp32_ns_frame\": " << r.fp32_ns_frame
        << ", \"int8_ns_frame\": " << r.int8_ns_frame
        << ", \"int8_speedup\": " << r.speedup() << "}"
        << (i + 1 < latency.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"devsim\": [\n";
  for (std::size_t i = 0; i < projections.size(); ++i) {
    const ProjectionResult& p = projections[i];
    out << "    {\"device\": \"" << p.device << "\", \"model\": \""
        << p.model << "\", \"fp32_ms\": " << p.fp32_ms
        << ", \"int8_ms\": " << p.int8_ms
        << ", \"int8_speedup\": " << p.speedup() << "}"
        << (i + 1 < projections.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"accuracy\": [\n";
  for (std::size_t i = 0; i < accuracy.size(); ++i) {
    const AccuracyPair& a = accuracy[i];
    out << "    {\"variant\": \"" << a.variant
        << "\", \"fp32\": " << json_metrics(a.fp32)
        << ", \"int8\": " << json_metrics(a.int8)
        << ", \"delta_accuracy\": " << a.int8.accuracy - a.fp32.accuracy
        << ", \"delta_f1\": " << a.int8.f1 - a.fp32.f1 << "}"
        << (i + 1 < accuracy.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_precision_sweep",
          "INT8 vs FP32: engine latency, device projections, and trained "
          "detector accuracy");
  bench::add_accuracy_flags(cli);
  cli.add_double("min-seconds", 0.2,
                 "minimum sampling time per measurement point");
  cli.add_double("input-scale", 0.25,
                 "model input scale for the ns/frame measurements");
  cli.add_flag("skip-training",
               "skip the trained-detector accuracy sweep (latency only)");
  cli.add_string("out", "BENCH_precision_sweep.json",
                 "machine-readable output path (empty disables)");
  cli.add_string("pareto-out", "BENCH_pareto.json",
                 "Pareto-frontier output path (empty disables)");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);
  const double min_seconds = cli.real("min-seconds");

  // 1. Measured FP32 vs INT8 Engine::run on the VIP models.
  const std::vector<models::ModelId> model_ids = {
      models::ModelId::kYoloV8n, models::ModelId::kYoloV11n,
      models::ModelId::kTrtPose, models::ModelId::kMonodepth2};
  std::vector<LatencyResult> latency;
  ResultTable latency_table(
      "Engine::run FP32 vs INT8 (input scale " +
          format_fixed(cli.real("input-scale"), 2) + ")",
      {"model", "fp32 ms", "int8 ms", "speedup"});
  for (models::ModelId id : model_ids) {
    latency.push_back(
        bench_engine_precision(id, cli.real("input-scale"), min_seconds));
    const LatencyResult& r = latency.back();
    latency_table.row()
        .cell(r.name)
        .cell(r.fp32_ns_frame * 1e-6, 2)
        .cell(r.int8_ns_frame * 1e-6, 2)
        .cell(r.speedup(), 2);
  }

  // 2. Roofline projection on the paper's devices.
  std::vector<ProjectionResult> projections;
  ResultTable devsim_table("Roofline projection FP32 vs INT8 (full-scale "
                           "inputs, batch 1)",
                           {"device", "model", "fp32 ms", "int8 ms",
                            "speedup"});
  devsim::RooflineOptions fp32_opts;
  devsim::RooflineOptions int8_opts;
  int8_opts.precision = devsim::Precision::kInt8;
  for (devsim::DeviceId device : devsim::edge_devices()) {
    const devsim::DeviceSpec& spec = devsim::device_spec(device);
    for (models::ModelId id : model_ids) {
      const nn::ModelProfile profile = models::profile_model(id);
      ProjectionResult p;
      p.device = spec.name;
      p.model = models::model_info(id).name;
      p.fp32_ms = devsim::model_latency_ms(profile, spec, fp32_opts);
      p.int8_ms = devsim::model_latency_ms(profile, spec, int8_opts);
      projections.push_back(p);
      devsim_table.row()
          .cell(p.device)
          .cell(p.model)
          .cell(p.fp32_ms, 2)
          .cell(p.int8_ms, 2)
          .cell(p.speedup(), 2);
    }
  }

  // 4a. Pareto kernel gates: the micro-kernel speedups the compressed
  // formats must sustain (machine-relative, gated when SIMD is active).
  const std::vector<Variant> variants = pareto_variants();
  std::vector<SparseGatePoint> sparse_gates;
  ResultTable sparse_gate_table(
      std::string("Pareto gate: sparse vs masked-dense packed GEMM "
                  "(simd: ") +
          simd::level_name(simd::active()) + ")",
      {"shape", "density", "dense ms", "sparse ms", "speedup"});
  for (const auto [keep, of] :
       {std::pair{3, 4}, std::pair{2, 4}, std::pair{1, 4}}) {
    sparse_gates.push_back(
        bench_sparse_gate(128, 1152, 196, keep, of, min_seconds));
    const SparseGatePoint& p = sparse_gates.back();
    sparse_gate_table.row()
        .cell(p.label)
        .cell(p.mask_density, 2)
        .cell(p.dense_ns * 1e-6, 3)
        .cell(p.sparse_ns * 1e-6, 3)
        .cell(p.speedup(), 2);
  }
  std::vector<HalfGatePoint> half_gates;
  ResultTable half_gate_table(
      "Pareto gate: fp16-storage vs fp32 packed GEMM (bandwidth-bound "
      "shapes)",
      {"shape", "fp32 ms", "fp16 ms", "speedup"});
  half_gates.push_back(bench_half_gate(512, 4096, 1, min_seconds));
  half_gates.push_back(bench_half_gate(256, 2304, 8, min_seconds));
  for (const HalfGatePoint& p : half_gates)
    half_gate_table.row()
        .cell(p.label)
        .cell(p.dense_ns * 1e-6, 3)
        .cell(p.half_ns * 1e-6, 3)
        .cell(p.speedup(), 2);

  // 4b. Sparse engine vs hand-masked dense twin.
  const EquivalenceResult equivalence =
      measure_equivalence(models::ModelId::kYoloV8n, cli.real("input-scale"));
  ResultTable equivalence_table(
      "Pareto: sparse engine vs masked-dense twin (nm50)",
      {"model", "sparse nodes", "max |diff|"});
  equivalence_table.row()
      .cell(equivalence.model)
      .cell(static_cast<std::int64_t>(equivalence.sparse_nodes))
      .cell(equivalence.max_abs_diff, 8);

  // 4c. Latency frontier: every variant on the VIP models plus the
  // GEMV-headed synthetic (the guaranteed-observable sparse/fp16 rows).
  std::vector<FrontierPoint> frontier;
  ResultTable frontier_table(
      "Pareto frontier: Engine::run across compression variants",
      {"model", "variant", "ms/frame", "speedup", "sparse", "fp16",
       "int8", "acc", "Δacc pt"});
  for (models::ModelId id : model_ids)
    bench_frontier_latency(models::model_info(id).name,
                           models::build_model(id, cli.real("input-scale")),
                           variants, min_seconds, frontier, frontier_table);
  bench_frontier_latency("mlp-head", mlp_head_graph(), variants,
                         min_seconds, frontier, frontier_table);

  // 3. Trained detectors through the engine in both precisions.
  std::vector<AccuracyPair> accuracy;
  ResultTable accuracy_table(
      "Trained MiniYolo via Engine: FP32 vs INT8 (diverse test set)",
      {"variant", "prec fp32", "prec int8", "rec fp32", "rec int8",
       "F1 fp32", "F1 int8", "acc fp32", "acc int8", "Δacc"});
  if (!cli.flag("skip-training")) {
    const trainer::AccuracyExperimentConfig config =
        bench::accuracy_config(cli);
    dataset::DatasetConfig dcfg;
    dcfg.scale = config.dataset_scale;
    dcfg.image_width = config.image_width;
    dcfg.image_height = config.image_height;
    dcfg.seed = config.seed;
    const dataset::DatasetGenerator generator(dcfg);
    Rng rng(hash_combine(config.seed, 0x18A7ULL));
    const dataset::SplitResult split =
        dataset::curated_split(generator, config.curated_fraction, rng);
    std::vector<dataset::Sample> test = split.test_diverse;
    if (config.eval_cap > 0 &&
        test.size() > static_cast<std::size_t>(config.eval_cap))
      test = dataset::subsample(
          test, static_cast<std::size_t>(config.eval_cap), rng);

    // Calibration frames: letterboxed renders of training samples, the
    // same distribution the detector sees at deployment.
    const std::vector<dataset::Sample> calib_samples = dataset::subsample(
        split.train, std::min<std::size_t>(split.train.size(), 8), rng);
    const trainer::TrainCorpus calib_corpus(generator, calib_samples,
                                            config.train.input_size);
    std::vector<Tensor> calib_frames;
    for (std::size_t i = 0; i < calib_corpus.size(); ++i)
      calib_frames.push_back(calib_corpus.image(i));

    const trainer::DetectorTrainer trainer(generator, config.train);
    for (models::YoloFamily family :
         {models::YoloFamily::kV8, models::YoloFamily::kV11}) {
      for (models::YoloSize size :
           {models::YoloSize::kNano, models::YoloSize::kMedium}) {
        models::MiniYolo model =
            trainer.train(family, size, split.train, split.val);
        nn::Engine engine(model.export_graph(), 1);
        model.export_weights(engine);
        engine.calibrate(calib_frames);

        AccuracyPair pair;
        pair.variant = bench::variant_name(family, size);
        pair.fp32 =
            evaluate_engine(model, engine, generator, test, "fp32");
        engine.prepare({.precision = nn::Precision::kInt8});
        pair.int8 =
            evaluate_engine(model, engine, generator, test, "int8");
        accuracy.push_back(pair);
        accuracy_table.row()
            .cell(pair.variant)
            .cell(pair.fp32.precision, 3)
            .cell(pair.int8.precision, 3)
            .cell(pair.fp32.recall, 3)
            .cell(pair.int8.recall, 3)
            .cell(pair.fp32.f1, 3)
            .cell(pair.int8.f1, 3)
            .cell(pair.fp32.accuracy, 3)
            .cell(pair.int8.accuracy, 3)
            .cell(pair.int8.accuracy - pair.fp32.accuracy, 3);

        // 4d. Trained-detector Pareto rows: the same detector swept
        // through the full compression grid, so every frontier variant
        // carries a measured accuracy next to its measured latency.
        // The medium variant is the one whose conv stages clear the
        // pruner's min_params floor — on nano every layer stays dense
        // and the accuracy deltas would be vacuously zero. Sparse
        // variants are prune-then-fine-tuned from the dense weights
        // (post-training magnitude pruning alone craters a detector
        // this small); nm50 and its fp16/int8 composites share one
        // fine-tune since the mask config is identical.
        if (family == models::YoloFamily::kV8 &&
            size == models::YoloSize::kMedium) {
          const std::string row_name = pair.variant + " (trained)";
          const nn::FeatShape in = engine.graph().input_shape();
          Tensor input({1, in.c, in.h, in.w});
          Rng in_rng(31);
          input.init_uniform(in_rng, 0.0f, 1.0f);

          const std::vector<ag::Var> params = model.parameters();
          std::vector<Tensor> dense_weights;
          dense_weights.reserve(params.size());
          for (const ag::Var& p : params) dense_weights.push_back(p->value);
          const auto load_weights = [&](const std::vector<Tensor>& weights) {
            for (std::size_t i = 0; i < params.size(); ++i)
              params[i]->value = weights[i];
          };
          std::vector<std::pair<nn::SparsityConfig, std::vector<Tensor>>>
              tuned;
          const int tune_epochs = std::max(4, config.train.epochs / 2);

          double fp32_ns = 0.0;
          double fp32_acc = 0.0;
          for (const Variant& variant : variants) {
            const nn::SparsityConfig& sparsity = variant.request.sparsity;
            if (sparsity.enabled()) {
              const auto it = std::find_if(
                  tuned.begin(), tuned.end(),
                  [&](const auto& entry) { return entry.first == sparsity; });
              if (it == tuned.end()) {
                load_weights(dense_weights);
                trainer.fine_tune_pruned(model, sparsity, tune_epochs,
                                         split.train);
                std::vector<Tensor> weights;
                weights.reserve(params.size());
                for (const ag::Var& p : params) weights.push_back(p->value);
                tuned.emplace_back(sparsity, std::move(weights));
              } else {
                load_weights(it->second);
              }
            } else {
              load_weights(dense_weights);
            }
            model.export_weights(engine);
            engine.prepare({});  // calibrate() requires fp32 active
            engine.calibrate(calib_frames);
            const nn::ExecutionPlan& vplan = engine.prepare(variant.request);
            FrontierPoint point;
            point.model = row_name;
            point.variant = variant.name;
            point.gated = variant.gated;
            point.sparse_nodes = vplan.sparse_nodes;
            point.fp16_nodes = vplan.fp16_nodes;
            point.quant_nodes = vplan.quant_nodes;
            engine.run(input);  // warm-up
            point.ns_frame =
                best_seconds([&] { engine.run(input); }, min_seconds) * 1e9;
            const eval::Metrics metrics = evaluate_engine(
                model, engine, generator, test, variant.name);
            point.has_accuracy = true;
            point.accuracy = metrics.accuracy;
            if (std::string(variant.name) == "fp32") {
              fp32_ns = point.ns_frame;
              fp32_acc = metrics.accuracy;
            }
            point.speedup_vs_fp32 = point.ns_frame > 0.0 && fp32_ns > 0.0
                                        ? fp32_ns / point.ns_frame
                                        : 1.0;
            point.delta_accuracy_pt =
                (metrics.accuracy - fp32_acc) * 100.0;
            frontier_table.row()
                .cell(point.model)
                .cell(point.variant)
                .cell(point.ns_frame * 1e-6, 3)
                .cell(point.speedup_vs_fp32, 2)
                .cell(static_cast<std::int64_t>(point.sparse_nodes))
                .cell(static_cast<std::int64_t>(point.fp16_nodes))
                .cell(static_cast<std::int64_t>(point.quant_nodes))
                .cell(point.accuracy, 3)
                .cell(point.delta_accuracy_pt, 2);
            frontier.push_back(std::move(point));
          }
        }
      }
    }
  }

  bench::emit(cli, {latency_table, devsim_table, sparse_gate_table,
                    half_gate_table, equivalence_table, frontier_table,
                    accuracy_table});

  if (!cli.string("out").empty()) {
    std::ofstream file(cli.string("out"));
    file << to_json(latency, projections, accuracy);
    std::cout << "wrote " << cli.string("out") << '\n';
  }
  if (!cli.string("pareto-out").empty()) {
    std::ofstream file(cli.string("pareto-out"));
    file << to_pareto_json(sparse_gates, half_gates, equivalence, frontier);
    std::cout << "wrote " << cli.string("pareto-out") << '\n';
  }
  return 0;
}
