// Shared configuration for the accuracy benches (Figs 1/3/4 and the
// train-size ablation). Defaults complete in minutes on one CPU core;
// --full approaches the paper's protocol (much slower).
#pragma once

#include "bench_common.hpp"
#include "trainer/accuracy_experiment.hpp"

namespace ocb::bench {

inline void add_accuracy_flags(Cli& cli) {
  add_common_flags(cli);
  cli.add_double("dataset-scale", 0.02,
                 "fraction of the paper's 30,711 images to generate");
  cli.add_int("epochs", 32, "training epochs (paper: 100)");
  cli.add_int("eval-cap", 100, "max test images per split (0 = all)");
  cli.add_double("curated-fraction", 0.25,
                 "per-category training fraction (paper: 0.10 of 30k)");
  cli.add_int("seed", 2025, "experiment seed");
  cli.add_flag("full",
               "paper-scale protocol: 10% of the full dataset, 100 epochs "
               "(hours of CPU time)");
}

inline trainer::AccuracyExperimentConfig accuracy_config(const Cli& cli) {
  trainer::AccuracyExperimentConfig config;
  if (cli.flag("full")) {
    config.dataset_scale = 1.0;
    config.curated_fraction = 0.10;
    config.train.epochs = 100;
    config.eval_cap = 0;
  } else {
    config.dataset_scale = cli.real("dataset-scale");
    config.curated_fraction = cli.real("curated-fraction");
    config.train.epochs = static_cast<int>(cli.integer("epochs"));
    config.eval_cap = static_cast<int>(cli.integer("eval-cap"));
  }
  config.seed = static_cast<std::uint64_t>(cli.integer("seed"));
  return config;
}

inline std::string variant_name(models::YoloFamily family,
                                models::YoloSize size) {
  return std::string(models::yolo_family_name(family)) + "-" +
         models::yolo_size_name(size) + " (RT)";
}

}  // namespace ocb::bench
