// Table 3 — edge-device specifications, plus the calibrated effective
// execution parameters the roofline simulator derives from them.
#include "bench_common.hpp"
#include "devsim/device.hpp"

using namespace ocb;
using namespace ocb::devsim;

int main(int argc, char** argv) {
  Cli cli("bench_table3_devices",
          "Reproduce Table 3: NVIDIA Jetson device specifications");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  ResultTable table("Table 3: device specifications",
                    {"feature", "Orin AGX", "Xavier NX", "Orin Nano",
                     "RTX 4090"});
  auto row = [&](const std::string& name, auto getter) {
    auto r = table.row();
    r.cell(name);
    for (DeviceId id : {DeviceId::kOrinAgx, DeviceId::kXavierNx,
                        DeviceId::kOrinNano, DeviceId::kRtx4090})
      r.cell(getter(device_spec(id)));
  };
  row("GPU architecture", [](const DeviceSpec& d) { return d.gpu_arch; });
  row("CUDA cores", [](const DeviceSpec& d) { return std::to_string(d.cuda_cores); });
  row("Tensor cores", [](const DeviceSpec& d) { return std::to_string(d.tensor_cores); });
  row("RAM (GB)", [](const DeviceSpec& d) { return format_fixed(d.ram_gb, 0); });
  row("Peak power (W)", [](const DeviceSpec& d) { return format_fixed(d.peak_power_w, 0); });
  row("Price (USD)", [](const DeviceSpec& d) { return format_fixed(d.price_usd, 0); });
  row("JetPack", [](const DeviceSpec& d) { return d.jetpack; });
  row("CUDA", [](const DeviceSpec& d) { return d.cuda; });

  ResultTable calibrated(
      "Calibrated effective execution parameters (PyTorch FP32 eager)",
      {"device", "eff GFLOP/s", "eff BW (GB/s)", "kernel overhead (us)",
       "frame overhead (ms)"});
  for (const DeviceSpec& d : device_table())
    calibrated.row()
        .cell(d.name)
        .cell(d.eff_gflops, 0)
        .cell(d.eff_bw_gbps, 0)
        .cell(d.kernel_overhead_us, 0)
        .cell(d.frame_overhead_ms, 1);

  bench::emit(cli, {table, calibrated});
  return 0;
}
