// End-to-end VIP pipeline study (extends §4.2.4's edge-cloud
// discussion).
//
// Composes the three Ocularone models (vest detection + Bodypose +
// Monodepth2) per frame on every device, reports achievable FPS against
// real-time deadlines, and runs the accuracy-aware placement advisor —
// the "adaptive deployment" direction the paper names as future work.
#include "bench_common.hpp"
#include "models/registry.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/placement.hpp"

using namespace ocb;
using namespace ocb::runtime;
using namespace ocb::models;

int main(int argc, char** argv) {
  Cli cli("bench_pipeline_e2e",
          "VIP pipeline FPS per device + edge-cloud placement advisor");
  bench::add_common_flags(cli);
  cli.add_int("frames", 300, "frames per pipeline run");
  cli.add_double("deadline-ms", 200.0,
                 "real-time budget per frame (paper uses <=200 ms as the "
                 "edge feasibility bar)");
  cli.add_double("rtt-ms", 30.0, "edge->workstation network round trip");
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const int frames = static_cast<int>(cli.integer("frames"));
  const double deadline = cli.real("deadline-ms");

  // --- per-device pipeline stats (vest-n + pose + depth, sequential) ---
  ResultTable table(
      "VIP pipeline (YOLOv8-n + Bodypose + Monodepth2, sequential)",
      {"device", "median ms", "p95 ms", "fps", "miss rate @deadline"});
  for (const devsim::DeviceSpec& dev : devsim::device_table()) {
    PipelineBuilder builder;
    std::uint64_t seed = 1;
    for (ModelId id :
         {ModelId::kYoloV8n, ModelId::kTrtPose, ModelId::kMonodepth2})
      builder.stage(std::make_unique<SimulatedExecutor>(
          profile_model(id), dev, seed++));
    Pipeline pipeline = builder.discipline(Discipline::kSequential)
                            .deadline_ms(deadline)
                            .build();
    const PipelineStats stats = pipeline.run(frames);
    table.row()
        .cell(dev.short_name)
        .cell(stats.per_frame.median, 1)
        .cell(stats.per_frame.p95, 1)
        .cell(stats.achieved_fps, 1)
        .cell(stats.deadline_miss_rate * 100.0, 1);
  }

  // --- placement advisor (accuracies shaped like Figs 3/4) ---
  const std::vector<Candidate> candidates = {
      {profile_model(ModelId::kYoloV8n), 0.986},
      {profile_model(ModelId::kYoloV8m), 0.990},
      {profile_model(ModelId::kYoloV8x), 0.991},
      {profile_model(ModelId::kYoloV11n), 0.986},
      {profile_model(ModelId::kYoloV11m), 0.9949},
      {profile_model(ModelId::kYoloV11x), 0.9927},
  };
  ResultTable placement("Accuracy-aware placement (budget " +
                            format_fixed(deadline, 0) + " ms)",
                        {"device", "best model", "latency ms", "accuracy %"});
  for (const devsim::DeviceSpec& dev : devsim::device_table()) {
    const auto best = best_on_device(candidates, dev.id, deadline);
    if (best)
      placement.row()
          .cell(dev.short_name)
          .cell(best->model_name)
          .cell(best->latency_ms, 1)
          .cell(best->accuracy * 100.0, 2);
    else
      placement.row().cell(dev.short_name).cell("(none fits)").cell("-").cell(
          "-");
  }

  ResultTable cloud("Edge-cloud split (rtt " +
                        format_fixed(cli.real("rtt-ms"), 0) + " ms)",
                    {"edge device", "edge model", "cloud model",
                     "cloud latency ms", "accuracy gain %"});
  for (devsim::DeviceId edge : devsim::edge_devices()) {
    const auto plan = plan_edge_cloud(candidates, edge, deadline,
                                      cli.real("rtt-ms"));
    if (!plan) {
      cloud.row()
          .cell(devsim::device_spec(edge).short_name)
          .cell("(no feasible plan)")
          .cell("-")
          .cell("-")
          .cell("-");
      continue;
    }
    cloud.row()
        .cell(devsim::device_spec(edge).short_name)
        .cell(plan->edge.model_name)
        .cell(plan->cloud ? plan->cloud->model_name : "(stay on edge)")
        .cell(plan->cloud ? format_fixed(plan->cloud->latency_ms, 1) : "-")
        .cell(plan->cloud
                  ? format_fixed(
                        (plan->cloud->accuracy - plan->edge.accuracy) * 100.0,
                        2)
                  : "0");
  }

  bench::emit(cli, {table, placement, cloud});
  return 0;
}
