// Fig 3 — accuracy of the six re-trained YOLO variants on the diverse
// (non-adversarial) test set.
//
// Paper: every RT model reaches ≥98.6%; v8 sits near 99% regardless of
// size; v11-m peaks at 99.49%, v11-x at 99.27%.
#include "bench_accuracy_common.hpp"

using namespace ocb;

namespace {
double paper_diverse(models::YoloFamily family, models::YoloSize size) {
  using enum models::YoloSize;
  if (family == models::YoloFamily::kV8)
    return size == kNano ? 98.9 : size == kMedium ? 99.0 : 99.0;
  return size == kNano ? 98.6 : size == kMedium ? 99.49 : 99.27;
}
}  // namespace

int main(int argc, char** argv) {
  Cli cli("bench_fig3_diverse",
          "Reproduce Fig 3: RT YOLO accuracy on the diverse test set");
  bench::add_accuracy_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  bench::apply_common_flags(cli);

  const auto config = bench::accuracy_config(cli);
  OCB_INFO << "training 6 detector variants (this takes a few minutes)...";
  const auto results = trainer::run_size_sweep(config);

  ResultTable table("Fig 3: accuracy on diverse dataset",
                    {"model", "params", "precision %", "recall %",
                     "accuracy %", "paper ~%"});
  for (const auto& r : results)
    table.row()
        .cell(bench::variant_name(r.family, r.size))
        .cell(r.params)
        .cell(r.diverse.precision * 100.0, 2)
        .cell(r.diverse.recall * 100.0, 2)
        .cell(r.diverse.accuracy * 100.0, 2)
        .cell(paper_diverse(r.family, r.size), 2);

  // Shape checks from §4.2.1.
  double min_acc = 1.0, max_acc = 0.0;
  for (const auto& r : results) {
    min_acc = std::min(min_acc, r.diverse.accuracy);
    max_acc = std::max(max_acc, r.diverse.accuracy);
  }
  ResultTable verdict("Fig 3 shape checks", {"claim", "observed"});
  verdict.row()
      .cell("all variants accurate on diverse data (spread small)")
      .cell(format_fixed(min_acc * 100.0, 1) + "% .. " +
            format_fixed(max_acc * 100.0, 1) + "%");

  bench::emit(cli, {table, verdict});
  return 0;
}
