file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_curation.dir/bench_fig1_curation.cpp.o"
  "CMakeFiles/bench_fig1_curation.dir/bench_fig1_curation.cpp.o.d"
  "bench_fig1_curation"
  "bench_fig1_curation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_curation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
