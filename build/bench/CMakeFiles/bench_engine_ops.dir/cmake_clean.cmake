file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_ops.dir/bench_engine_ops.cpp.o"
  "CMakeFiles/bench_engine_ops.dir/bench_engine_ops.cpp.o.d"
  "bench_engine_ops"
  "bench_engine_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
