file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_edge.dir/bench_fig5_edge.cpp.o"
  "CMakeFiles/bench_fig5_edge.dir/bench_fig5_edge.cpp.o.d"
  "bench_fig5_edge"
  "bench_fig5_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
