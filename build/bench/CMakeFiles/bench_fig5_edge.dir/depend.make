# Empty dependencies file for bench_fig5_edge.
# This may be replaced when dependencies are built.
