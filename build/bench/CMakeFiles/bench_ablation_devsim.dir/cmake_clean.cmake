file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_devsim.dir/bench_ablation_devsim.cpp.o"
  "CMakeFiles/bench_ablation_devsim.dir/bench_ablation_devsim.cpp.o.d"
  "bench_ablation_devsim"
  "bench_ablation_devsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_devsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
