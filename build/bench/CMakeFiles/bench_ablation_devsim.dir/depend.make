# Empty dependencies file for bench_ablation_devsim.
# This may be replaced when dependencies are built.
