file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_diverse.dir/bench_fig3_diverse.cpp.o"
  "CMakeFiles/bench_fig3_diverse.dir/bench_fig3_diverse.cpp.o.d"
  "bench_fig3_diverse"
  "bench_fig3_diverse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_diverse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
