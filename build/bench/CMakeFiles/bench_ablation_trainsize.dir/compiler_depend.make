# Empty compiler generated dependencies file for bench_ablation_trainsize.
# This may be replaced when dependencies are built.
