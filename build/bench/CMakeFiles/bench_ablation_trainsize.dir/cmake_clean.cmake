file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_trainsize.dir/bench_ablation_trainsize.cpp.o"
  "CMakeFiles/bench_ablation_trainsize.dir/bench_ablation_trainsize.cpp.o.d"
  "bench_ablation_trainsize"
  "bench_ablation_trainsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_trainsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
