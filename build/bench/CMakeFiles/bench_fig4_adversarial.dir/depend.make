# Empty dependencies file for bench_fig4_adversarial.
# This may be replaced when dependencies are built.
