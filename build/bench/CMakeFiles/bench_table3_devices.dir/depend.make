# Empty dependencies file for bench_table3_devices.
# This may be replaced when dependencies are built.
