file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_workstation.dir/bench_fig6_workstation.cpp.o"
  "CMakeFiles/bench_fig6_workstation.dir/bench_fig6_workstation.cpp.o.d"
  "bench_fig6_workstation"
  "bench_fig6_workstation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_workstation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
