# Empty dependencies file for test_devsim.
# This may be replaced when dependencies are built.
