file(REMOVE_RECURSE
  "CMakeFiles/test_pr_curve.dir/test_pr_curve.cpp.o"
  "CMakeFiles/test_pr_curve.dir/test_pr_curve.cpp.o.d"
  "test_pr_curve"
  "test_pr_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pr_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
