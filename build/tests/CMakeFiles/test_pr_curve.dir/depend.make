# Empty dependencies file for test_pr_curve.
# This may be replaced when dependencies are built.
