# Empty dependencies file for test_nn_graph.
# This may be replaced when dependencies are built.
