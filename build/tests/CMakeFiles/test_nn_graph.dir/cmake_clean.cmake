file(REMOVE_RECURSE
  "CMakeFiles/test_nn_graph.dir/test_nn_graph.cpp.o"
  "CMakeFiles/test_nn_graph.dir/test_nn_graph.cpp.o.d"
  "test_nn_graph"
  "test_nn_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
