# Empty dependencies file for test_nn_engine.
# This may be replaced when dependencies are built.
