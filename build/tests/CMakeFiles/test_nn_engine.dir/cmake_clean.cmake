file(REMOVE_RECURSE
  "CMakeFiles/test_nn_engine.dir/test_nn_engine.cpp.o"
  "CMakeFiles/test_nn_engine.dir/test_nn_engine.cpp.o.d"
  "test_nn_engine"
  "test_nn_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
