# Empty dependencies file for test_core_cli.
# This may be replaced when dependencies are built.
