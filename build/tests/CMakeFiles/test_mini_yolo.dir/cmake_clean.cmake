file(REMOVE_RECURSE
  "CMakeFiles/test_mini_yolo.dir/test_mini_yolo.cpp.o"
  "CMakeFiles/test_mini_yolo.dir/test_mini_yolo.cpp.o.d"
  "test_mini_yolo"
  "test_mini_yolo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mini_yolo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
