# Empty dependencies file for test_mini_yolo.
# This may be replaced when dependencies are built.
