file(REMOVE_RECURSE
  "CMakeFiles/test_image_transform.dir/test_image_transform.cpp.o"
  "CMakeFiles/test_image_transform.dir/test_image_transform.cpp.o.d"
  "test_image_transform"
  "test_image_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
