# Empty dependencies file for test_vip.
# This may be replaced when dependencies are built.
