file(REMOVE_RECURSE
  "CMakeFiles/test_vip.dir/test_vip.cpp.o"
  "CMakeFiles/test_vip.dir/test_vip.cpp.o.d"
  "test_vip"
  "test_vip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
