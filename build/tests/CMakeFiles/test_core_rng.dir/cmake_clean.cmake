file(REMOVE_RECURSE
  "CMakeFiles/test_core_rng.dir/test_core_rng.cpp.o"
  "CMakeFiles/test_core_rng.dir/test_core_rng.cpp.o.d"
  "test_core_rng"
  "test_core_rng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
