# Empty compiler generated dependencies file for example_dataset_export.
# This may be replaced when dependencies are built.
