file(REMOVE_RECURSE
  "CMakeFiles/example_dataset_export.dir/dataset_export.cpp.o"
  "CMakeFiles/example_dataset_export.dir/dataset_export.cpp.o.d"
  "example_dataset_export"
  "example_dataset_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dataset_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
