
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/example_quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/example_quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_trainer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_vip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_devsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
