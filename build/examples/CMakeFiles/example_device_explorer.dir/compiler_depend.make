# Empty compiler generated dependencies file for example_device_explorer.
# This may be replaced when dependencies are built.
