file(REMOVE_RECURSE
  "CMakeFiles/example_device_explorer.dir/device_explorer.cpp.o"
  "CMakeFiles/example_device_explorer.dir/device_explorer.cpp.o.d"
  "example_device_explorer"
  "example_device_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_device_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
