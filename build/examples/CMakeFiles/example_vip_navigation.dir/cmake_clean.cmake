file(REMOVE_RECURSE
  "CMakeFiles/example_vip_navigation.dir/vip_navigation.cpp.o"
  "CMakeFiles/example_vip_navigation.dir/vip_navigation.cpp.o.d"
  "example_vip_navigation"
  "example_vip_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_vip_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
