# Empty compiler generated dependencies file for example_vip_navigation.
# This may be replaced when dependencies are built.
