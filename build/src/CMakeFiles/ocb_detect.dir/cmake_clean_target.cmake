file(REMOVE_RECURSE
  "libocb_detect.a"
)
