file(REMOVE_RECURSE
  "CMakeFiles/ocb_detect.dir/detect/box.cpp.o"
  "CMakeFiles/ocb_detect.dir/detect/box.cpp.o.d"
  "CMakeFiles/ocb_detect.dir/detect/letterbox.cpp.o"
  "CMakeFiles/ocb_detect.dir/detect/letterbox.cpp.o.d"
  "CMakeFiles/ocb_detect.dir/detect/nms.cpp.o"
  "CMakeFiles/ocb_detect.dir/detect/nms.cpp.o.d"
  "libocb_detect.a"
  "libocb_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
