# Empty dependencies file for ocb_detect.
# This may be replaced when dependencies are built.
