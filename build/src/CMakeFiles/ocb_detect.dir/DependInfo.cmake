
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/box.cpp" "src/CMakeFiles/ocb_detect.dir/detect/box.cpp.o" "gcc" "src/CMakeFiles/ocb_detect.dir/detect/box.cpp.o.d"
  "/root/repo/src/detect/letterbox.cpp" "src/CMakeFiles/ocb_detect.dir/detect/letterbox.cpp.o" "gcc" "src/CMakeFiles/ocb_detect.dir/detect/letterbox.cpp.o.d"
  "/root/repo/src/detect/nms.cpp" "src/CMakeFiles/ocb_detect.dir/detect/nms.cpp.o" "gcc" "src/CMakeFiles/ocb_detect.dir/detect/nms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
