
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devsim/device.cpp" "src/CMakeFiles/ocb_devsim.dir/devsim/device.cpp.o" "gcc" "src/CMakeFiles/ocb_devsim.dir/devsim/device.cpp.o.d"
  "/root/repo/src/devsim/roofline.cpp" "src/CMakeFiles/ocb_devsim.dir/devsim/roofline.cpp.o" "gcc" "src/CMakeFiles/ocb_devsim.dir/devsim/roofline.cpp.o.d"
  "/root/repo/src/devsim/simulator.cpp" "src/CMakeFiles/ocb_devsim.dir/devsim/simulator.cpp.o" "gcc" "src/CMakeFiles/ocb_devsim.dir/devsim/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
