# Empty dependencies file for ocb_devsim.
# This may be replaced when dependencies are built.
