file(REMOVE_RECURSE
  "CMakeFiles/ocb_devsim.dir/devsim/device.cpp.o"
  "CMakeFiles/ocb_devsim.dir/devsim/device.cpp.o.d"
  "CMakeFiles/ocb_devsim.dir/devsim/roofline.cpp.o"
  "CMakeFiles/ocb_devsim.dir/devsim/roofline.cpp.o.d"
  "CMakeFiles/ocb_devsim.dir/devsim/simulator.cpp.o"
  "CMakeFiles/ocb_devsim.dir/devsim/simulator.cpp.o.d"
  "libocb_devsim.a"
  "libocb_devsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_devsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
