file(REMOVE_RECURSE
  "libocb_devsim.a"
)
