# Empty dependencies file for ocb_vip.
# This may be replaced when dependencies are built.
