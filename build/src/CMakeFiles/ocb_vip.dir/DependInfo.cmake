
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vip/alerts.cpp" "src/CMakeFiles/ocb_vip.dir/vip/alerts.cpp.o" "gcc" "src/CMakeFiles/ocb_vip.dir/vip/alerts.cpp.o.d"
  "/root/repo/src/vip/fall_svm.cpp" "src/CMakeFiles/ocb_vip.dir/vip/fall_svm.cpp.o" "gcc" "src/CMakeFiles/ocb_vip.dir/vip/fall_svm.cpp.o.d"
  "/root/repo/src/vip/navigator.cpp" "src/CMakeFiles/ocb_vip.dir/vip/navigator.cpp.o" "gcc" "src/CMakeFiles/ocb_vip.dir/vip/navigator.cpp.o.d"
  "/root/repo/src/vip/obstacle.cpp" "src/CMakeFiles/ocb_vip.dir/vip/obstacle.cpp.o" "gcc" "src/CMakeFiles/ocb_vip.dir/vip/obstacle.cpp.o.d"
  "/root/repo/src/vip/tracker.cpp" "src/CMakeFiles/ocb_vip.dir/vip/tracker.cpp.o" "gcc" "src/CMakeFiles/ocb_vip.dir/vip/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_devsim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_dataset.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
