file(REMOVE_RECURSE
  "CMakeFiles/ocb_vip.dir/vip/alerts.cpp.o"
  "CMakeFiles/ocb_vip.dir/vip/alerts.cpp.o.d"
  "CMakeFiles/ocb_vip.dir/vip/fall_svm.cpp.o"
  "CMakeFiles/ocb_vip.dir/vip/fall_svm.cpp.o.d"
  "CMakeFiles/ocb_vip.dir/vip/navigator.cpp.o"
  "CMakeFiles/ocb_vip.dir/vip/navigator.cpp.o.d"
  "CMakeFiles/ocb_vip.dir/vip/obstacle.cpp.o"
  "CMakeFiles/ocb_vip.dir/vip/obstacle.cpp.o.d"
  "CMakeFiles/ocb_vip.dir/vip/tracker.cpp.o"
  "CMakeFiles/ocb_vip.dir/vip/tracker.cpp.o.d"
  "libocb_vip.a"
  "libocb_vip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_vip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
