file(REMOVE_RECURSE
  "libocb_vip.a"
)
