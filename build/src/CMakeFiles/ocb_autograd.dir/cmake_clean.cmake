file(REMOVE_RECURSE
  "CMakeFiles/ocb_autograd.dir/autograd/ops.cpp.o"
  "CMakeFiles/ocb_autograd.dir/autograd/ops.cpp.o.d"
  "CMakeFiles/ocb_autograd.dir/autograd/optimizer.cpp.o"
  "CMakeFiles/ocb_autograd.dir/autograd/optimizer.cpp.o.d"
  "CMakeFiles/ocb_autograd.dir/autograd/variable.cpp.o"
  "CMakeFiles/ocb_autograd.dir/autograd/variable.cpp.o.d"
  "libocb_autograd.a"
  "libocb_autograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_autograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
