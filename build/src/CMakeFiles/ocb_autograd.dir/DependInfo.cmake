
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autograd/ops.cpp" "src/CMakeFiles/ocb_autograd.dir/autograd/ops.cpp.o" "gcc" "src/CMakeFiles/ocb_autograd.dir/autograd/ops.cpp.o.d"
  "/root/repo/src/autograd/optimizer.cpp" "src/CMakeFiles/ocb_autograd.dir/autograd/optimizer.cpp.o" "gcc" "src/CMakeFiles/ocb_autograd.dir/autograd/optimizer.cpp.o.d"
  "/root/repo/src/autograd/variable.cpp" "src/CMakeFiles/ocb_autograd.dir/autograd/variable.cpp.o" "gcc" "src/CMakeFiles/ocb_autograd.dir/autograd/variable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
