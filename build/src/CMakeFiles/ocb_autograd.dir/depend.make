# Empty dependencies file for ocb_autograd.
# This may be replaced when dependencies are built.
