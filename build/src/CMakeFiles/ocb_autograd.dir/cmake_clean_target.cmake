file(REMOVE_RECURSE
  "libocb_autograd.a"
)
