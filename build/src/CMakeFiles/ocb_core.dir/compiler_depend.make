# Empty compiler generated dependencies file for ocb_core.
# This may be replaced when dependencies are built.
