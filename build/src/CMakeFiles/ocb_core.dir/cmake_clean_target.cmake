file(REMOVE_RECURSE
  "libocb_core.a"
)
