file(REMOVE_RECURSE
  "CMakeFiles/ocb_core.dir/core/cli.cpp.o"
  "CMakeFiles/ocb_core.dir/core/cli.cpp.o.d"
  "CMakeFiles/ocb_core.dir/core/experiment.cpp.o"
  "CMakeFiles/ocb_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/ocb_core.dir/core/log.cpp.o"
  "CMakeFiles/ocb_core.dir/core/log.cpp.o.d"
  "CMakeFiles/ocb_core.dir/core/rng.cpp.o"
  "CMakeFiles/ocb_core.dir/core/rng.cpp.o.d"
  "CMakeFiles/ocb_core.dir/core/stats.cpp.o"
  "CMakeFiles/ocb_core.dir/core/stats.cpp.o.d"
  "CMakeFiles/ocb_core.dir/core/table.cpp.o"
  "CMakeFiles/ocb_core.dir/core/table.cpp.o.d"
  "libocb_core.a"
  "libocb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
