file(REMOVE_RECURSE
  "CMakeFiles/ocb_trainer.dir/trainer/accuracy_experiment.cpp.o"
  "CMakeFiles/ocb_trainer.dir/trainer/accuracy_experiment.cpp.o.d"
  "CMakeFiles/ocb_trainer.dir/trainer/detector_trainer.cpp.o"
  "CMakeFiles/ocb_trainer.dir/trainer/detector_trainer.cpp.o.d"
  "libocb_trainer.a"
  "libocb_trainer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
