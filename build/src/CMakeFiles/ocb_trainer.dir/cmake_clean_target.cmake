file(REMOVE_RECURSE
  "libocb_trainer.a"
)
