# Empty dependencies file for ocb_trainer.
# This may be replaced when dependencies are built.
