file(REMOVE_RECURSE
  "libocb_image.a"
)
