# Empty dependencies file for ocb_image.
# This may be replaced when dependencies are built.
