file(REMOVE_RECURSE
  "CMakeFiles/ocb_image.dir/image/color.cpp.o"
  "CMakeFiles/ocb_image.dir/image/color.cpp.o.d"
  "CMakeFiles/ocb_image.dir/image/draw.cpp.o"
  "CMakeFiles/ocb_image.dir/image/draw.cpp.o.d"
  "CMakeFiles/ocb_image.dir/image/image.cpp.o"
  "CMakeFiles/ocb_image.dir/image/image.cpp.o.d"
  "CMakeFiles/ocb_image.dir/image/io.cpp.o"
  "CMakeFiles/ocb_image.dir/image/io.cpp.o.d"
  "CMakeFiles/ocb_image.dir/image/transform.cpp.o"
  "CMakeFiles/ocb_image.dir/image/transform.cpp.o.d"
  "libocb_image.a"
  "libocb_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
