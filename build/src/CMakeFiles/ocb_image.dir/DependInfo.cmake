
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/color.cpp" "src/CMakeFiles/ocb_image.dir/image/color.cpp.o" "gcc" "src/CMakeFiles/ocb_image.dir/image/color.cpp.o.d"
  "/root/repo/src/image/draw.cpp" "src/CMakeFiles/ocb_image.dir/image/draw.cpp.o" "gcc" "src/CMakeFiles/ocb_image.dir/image/draw.cpp.o.d"
  "/root/repo/src/image/image.cpp" "src/CMakeFiles/ocb_image.dir/image/image.cpp.o" "gcc" "src/CMakeFiles/ocb_image.dir/image/image.cpp.o.d"
  "/root/repo/src/image/io.cpp" "src/CMakeFiles/ocb_image.dir/image/io.cpp.o" "gcc" "src/CMakeFiles/ocb_image.dir/image/io.cpp.o.d"
  "/root/repo/src/image/transform.cpp" "src/CMakeFiles/ocb_image.dir/image/transform.cpp.o" "gcc" "src/CMakeFiles/ocb_image.dir/image/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
