file(REMOVE_RECURSE
  "libocb_runtime.a"
)
