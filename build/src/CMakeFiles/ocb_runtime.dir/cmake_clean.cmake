file(REMOVE_RECURSE
  "CMakeFiles/ocb_runtime.dir/runtime/executor.cpp.o"
  "CMakeFiles/ocb_runtime.dir/runtime/executor.cpp.o.d"
  "CMakeFiles/ocb_runtime.dir/runtime/frame_source.cpp.o"
  "CMakeFiles/ocb_runtime.dir/runtime/frame_source.cpp.o.d"
  "CMakeFiles/ocb_runtime.dir/runtime/pipeline.cpp.o"
  "CMakeFiles/ocb_runtime.dir/runtime/pipeline.cpp.o.d"
  "CMakeFiles/ocb_runtime.dir/runtime/placement.cpp.o"
  "CMakeFiles/ocb_runtime.dir/runtime/placement.cpp.o.d"
  "libocb_runtime.a"
  "libocb_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
