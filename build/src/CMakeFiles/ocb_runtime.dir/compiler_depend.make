# Empty compiler generated dependencies file for ocb_runtime.
# This may be replaced when dependencies are built.
