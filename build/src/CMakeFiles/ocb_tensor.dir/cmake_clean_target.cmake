file(REMOVE_RECURSE
  "libocb_tensor.a"
)
