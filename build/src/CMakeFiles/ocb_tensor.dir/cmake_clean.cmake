file(REMOVE_RECURSE
  "CMakeFiles/ocb_tensor.dir/tensor/gemm.cpp.o"
  "CMakeFiles/ocb_tensor.dir/tensor/gemm.cpp.o.d"
  "CMakeFiles/ocb_tensor.dir/tensor/im2col.cpp.o"
  "CMakeFiles/ocb_tensor.dir/tensor/im2col.cpp.o.d"
  "CMakeFiles/ocb_tensor.dir/tensor/tensor.cpp.o"
  "CMakeFiles/ocb_tensor.dir/tensor/tensor.cpp.o.d"
  "libocb_tensor.a"
  "libocb_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
