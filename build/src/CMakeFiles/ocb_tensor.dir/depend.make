# Empty dependencies file for ocb_tensor.
# This may be replaced when dependencies are built.
