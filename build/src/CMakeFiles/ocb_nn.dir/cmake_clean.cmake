file(REMOVE_RECURSE
  "CMakeFiles/ocb_nn.dir/nn/engine.cpp.o"
  "CMakeFiles/ocb_nn.dir/nn/engine.cpp.o.d"
  "CMakeFiles/ocb_nn.dir/nn/graph.cpp.o"
  "CMakeFiles/ocb_nn.dir/nn/graph.cpp.o.d"
  "CMakeFiles/ocb_nn.dir/nn/layer.cpp.o"
  "CMakeFiles/ocb_nn.dir/nn/layer.cpp.o.d"
  "CMakeFiles/ocb_nn.dir/nn/ops.cpp.o"
  "CMakeFiles/ocb_nn.dir/nn/ops.cpp.o.d"
  "CMakeFiles/ocb_nn.dir/nn/profile.cpp.o"
  "CMakeFiles/ocb_nn.dir/nn/profile.cpp.o.d"
  "libocb_nn.a"
  "libocb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
