# Empty dependencies file for ocb_nn.
# This may be replaced when dependencies are built.
