file(REMOVE_RECURSE
  "libocb_nn.a"
)
