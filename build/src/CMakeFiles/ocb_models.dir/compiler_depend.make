# Empty compiler generated dependencies file for ocb_models.
# This may be replaced when dependencies are built.
