
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/blocks.cpp" "src/CMakeFiles/ocb_models.dir/models/blocks.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/blocks.cpp.o.d"
  "/root/repo/src/models/mini_yolo.cpp" "src/CMakeFiles/ocb_models.dir/models/mini_yolo.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/mini_yolo.cpp.o.d"
  "/root/repo/src/models/monodepth2.cpp" "src/CMakeFiles/ocb_models.dir/models/monodepth2.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/monodepth2.cpp.o.d"
  "/root/repo/src/models/registry.cpp" "src/CMakeFiles/ocb_models.dir/models/registry.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/registry.cpp.o.d"
  "/root/repo/src/models/serialize.cpp" "src/CMakeFiles/ocb_models.dir/models/serialize.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/serialize.cpp.o.d"
  "/root/repo/src/models/trt_pose.cpp" "src/CMakeFiles/ocb_models.dir/models/trt_pose.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/trt_pose.cpp.o.d"
  "/root/repo/src/models/yolo_v11.cpp" "src/CMakeFiles/ocb_models.dir/models/yolo_v11.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/yolo_v11.cpp.o.d"
  "/root/repo/src/models/yolo_v8.cpp" "src/CMakeFiles/ocb_models.dir/models/yolo_v8.cpp.o" "gcc" "src/CMakeFiles/ocb_models.dir/models/yolo_v8.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_autograd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
