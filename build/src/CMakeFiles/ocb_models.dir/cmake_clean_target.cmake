file(REMOVE_RECURSE
  "libocb_models.a"
)
