file(REMOVE_RECURSE
  "CMakeFiles/ocb_models.dir/models/blocks.cpp.o"
  "CMakeFiles/ocb_models.dir/models/blocks.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/mini_yolo.cpp.o"
  "CMakeFiles/ocb_models.dir/models/mini_yolo.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/monodepth2.cpp.o"
  "CMakeFiles/ocb_models.dir/models/monodepth2.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/registry.cpp.o"
  "CMakeFiles/ocb_models.dir/models/registry.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/serialize.cpp.o"
  "CMakeFiles/ocb_models.dir/models/serialize.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/trt_pose.cpp.o"
  "CMakeFiles/ocb_models.dir/models/trt_pose.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/yolo_v11.cpp.o"
  "CMakeFiles/ocb_models.dir/models/yolo_v11.cpp.o.d"
  "CMakeFiles/ocb_models.dir/models/yolo_v8.cpp.o"
  "CMakeFiles/ocb_models.dir/models/yolo_v8.cpp.o.d"
  "libocb_models.a"
  "libocb_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
