file(REMOVE_RECURSE
  "CMakeFiles/ocb_parallel.dir/parallel/parallel_for.cpp.o"
  "CMakeFiles/ocb_parallel.dir/parallel/parallel_for.cpp.o.d"
  "CMakeFiles/ocb_parallel.dir/parallel/thread_pool.cpp.o"
  "CMakeFiles/ocb_parallel.dir/parallel/thread_pool.cpp.o.d"
  "libocb_parallel.a"
  "libocb_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
