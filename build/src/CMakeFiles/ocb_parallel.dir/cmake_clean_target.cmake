file(REMOVE_RECURSE
  "libocb_parallel.a"
)
