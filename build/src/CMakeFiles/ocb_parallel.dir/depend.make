# Empty dependencies file for ocb_parallel.
# This may be replaced when dependencies are built.
