file(REMOVE_RECURSE
  "libocb_eval.a"
)
