# Empty dependencies file for ocb_eval.
# This may be replaced when dependencies are built.
