file(REMOVE_RECURSE
  "CMakeFiles/ocb_eval.dir/eval/matcher.cpp.o"
  "CMakeFiles/ocb_eval.dir/eval/matcher.cpp.o.d"
  "CMakeFiles/ocb_eval.dir/eval/metrics.cpp.o"
  "CMakeFiles/ocb_eval.dir/eval/metrics.cpp.o.d"
  "CMakeFiles/ocb_eval.dir/eval/pr_curve.cpp.o"
  "CMakeFiles/ocb_eval.dir/eval/pr_curve.cpp.o.d"
  "CMakeFiles/ocb_eval.dir/eval/report.cpp.o"
  "CMakeFiles/ocb_eval.dir/eval/report.cpp.o.d"
  "libocb_eval.a"
  "libocb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
