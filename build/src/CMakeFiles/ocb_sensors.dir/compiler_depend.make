# Empty compiler generated dependencies file for ocb_sensors.
# This may be replaced when dependencies are built.
