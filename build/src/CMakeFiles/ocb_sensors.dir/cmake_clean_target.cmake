file(REMOVE_RECURSE
  "libocb_sensors.a"
)
