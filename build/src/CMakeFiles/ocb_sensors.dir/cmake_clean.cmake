file(REMOVE_RECURSE
  "CMakeFiles/ocb_sensors.dir/sensors/fusion.cpp.o"
  "CMakeFiles/ocb_sensors.dir/sensors/fusion.cpp.o.d"
  "CMakeFiles/ocb_sensors.dir/sensors/lidar.cpp.o"
  "CMakeFiles/ocb_sensors.dir/sensors/lidar.cpp.o.d"
  "CMakeFiles/ocb_sensors.dir/sensors/thermal.cpp.o"
  "CMakeFiles/ocb_sensors.dir/sensors/thermal.cpp.o.d"
  "libocb_sensors.a"
  "libocb_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
