
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataset/adversarial.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/adversarial.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/adversarial.cpp.o.d"
  "/root/repo/src/dataset/annotation.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/annotation.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/annotation.cpp.o.d"
  "/root/repo/src/dataset/generator.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/generator.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/generator.cpp.o.d"
  "/root/repo/src/dataset/render.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/render.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/render.cpp.o.d"
  "/root/repo/src/dataset/sampling.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/sampling.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/sampling.cpp.o.d"
  "/root/repo/src/dataset/scene.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/scene.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/scene.cpp.o.d"
  "/root/repo/src/dataset/taxonomy.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/taxonomy.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/taxonomy.cpp.o.d"
  "/root/repo/src/dataset/video.cpp" "src/CMakeFiles/ocb_dataset.dir/dataset/video.cpp.o" "gcc" "src/CMakeFiles/ocb_dataset.dir/dataset/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ocb_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ocb_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
