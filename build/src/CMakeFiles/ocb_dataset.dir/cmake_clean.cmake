file(REMOVE_RECURSE
  "CMakeFiles/ocb_dataset.dir/dataset/adversarial.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/adversarial.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/annotation.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/annotation.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/generator.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/generator.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/render.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/render.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/sampling.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/sampling.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/scene.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/scene.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/taxonomy.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/taxonomy.cpp.o.d"
  "CMakeFiles/ocb_dataset.dir/dataset/video.cpp.o"
  "CMakeFiles/ocb_dataset.dir/dataset/video.cpp.o.d"
  "libocb_dataset.a"
  "libocb_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ocb_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
