# Empty dependencies file for ocb_dataset.
# This may be replaced when dependencies are built.
