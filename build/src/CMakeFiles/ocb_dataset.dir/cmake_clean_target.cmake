file(REMOVE_RECURSE
  "libocb_dataset.a"
)
