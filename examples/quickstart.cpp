// Quickstart: generate a scene, train a small hazard-vest detector in
// under a minute, and run a detection — the 60-second tour of the API.
//
//   ./example_quickstart
#include <iostream>

#include "dataset/sampling.hpp"
#include "image/draw.hpp"
#include "image/io.hpp"
#include "trainer/detector_trainer.hpp"

using namespace ocb;

int main() {
  std::cout << "Ocularone-Bench quickstart\n"
            << "==========================\n\n";

  // 1) Generate a small synthetic hazard-vest dataset (Table 1 taxonomy
  //    at 1/250 of the paper's size — ~120 images).
  dataset::DatasetConfig dc;
  dc.scale = 0.004;
  dc.image_width = 160;
  dc.image_height = 120;
  dc.seed = 7;
  dataset::DatasetGenerator generator(dc);
  std::cout << "dataset: " << generator.samples().size() << " frames from "
            << generator.videos().size() << " simulated drone videos\n";

  // 2) Split it the way the paper does (stratified sample → 80:20).
  Rng rng(1);
  auto split = dataset::curated_split(generator, 0.4, rng);
  std::cout << "split: " << split.train.size() << " train / "
            << split.val.size() << " val / "
            << split.test_diverse.size() + split.test_adversarial.size()
            << " test\n";

  // 3) Train a MiniYolo v8-m (the trainable stand-in for the paper's
  //    retrained YOLO models — see DESIGN.md).
  trainer::TrainConfig tc;
  tc.epochs = 20;
  trainer::DetectorTrainer trainer(generator, tc);
  std::cout << "training YOLOv8-m mini detector (" << tc.epochs
            << " epochs)...\n";
  const models::MiniYolo detector = trainer.train(
      models::YoloFamily::kV8, models::YoloSize::kMedium, split.train,
      split.val);
  std::cout << "trained " << detector.param_count() << " parameters\n\n";

  // 4) Detect the VIP on a held-out frame.
  const auto& sample = split.test_diverse.front();
  const dataset::RenderedFrame frame = generator.render(sample);
  const auto detections = detector.detect(frame.image, 0.4f);

  std::cout << "test frame: category "
            << dataset::category_name(sample.category) << "\n";
  std::cout << "ground truth vest box: (" << frame.vest.box.x0 << ", "
            << frame.vest.box.y0 << ") - (" << frame.vest.box.x1 << ", "
            << frame.vest.box.y1 << ")\n";
  if (detections.empty()) {
    std::cout << "no detection (try more epochs)\n";
  } else {
    const Detection& det = detections.front();
    std::cout << "detected vest:        (" << det.box.x0 << ", " << det.box.y0
              << ") - (" << det.box.x1 << ", " << det.box.y1
              << ")  confidence " << det.confidence << "  IoU "
              << iou(det.box, frame.vest.box) << "\n";
  }

  // 5) Save the frame so you can look at it.
  Image annotated = frame.image;
  stroke_rect(annotated, static_cast<int>(frame.vest.box.x0),
              static_cast<int>(frame.vest.box.y0),
              static_cast<int>(frame.vest.box.x1),
              static_cast<int>(frame.vest.box.y1), {0.0f, 1.0f, 0.0f}, 1);
  for (const Detection& det : detections)
    stroke_rect(annotated, static_cast<int>(det.box.x0),
                static_cast<int>(det.box.y0), static_cast<int>(det.box.x1),
                static_cast<int>(det.box.y1), {1.0f, 0.0f, 0.0f}, 1);
  write_ppm(annotated, "quickstart_detection.ppm");
  std::cout << "\nwrote quickstart_detection.ppm (green = truth, red = "
               "detection)\n";
  return 0;
}
