// VIP navigation: the full Ocularone application loop.
//
// Streams a simulated drone video, runs vest detection + tracking,
// depth-based obstacle sectors, and SVM fall monitoring, and prints the
// guidance alerts a VIP would hear.
//
//   ./example_vip_navigation
#include <iomanip>
#include <iostream>
#include <memory>

#include "models/registry.hpp"
#include "runtime/streaming_pipeline.hpp"
#include "trainer/detector_trainer.hpp"
#include "vip/navigator.hpp"

using namespace ocb;

int main() {
  std::cout << "Ocularone VIP navigation demo\n"
            << "=============================\n\n";

  // --- train the perception models (dataset → detector, poses → SVM) ---
  dataset::DatasetConfig dc;
  dc.scale = 0.008;
  dc.image_width = 160;
  dc.image_height = 120;
  dc.seed = 21;
  dataset::DatasetGenerator generator(dc);

  Rng rng(2);
  auto split = dataset::curated_split(generator, 0.4, rng);
  trainer::TrainConfig tc;
  tc.epochs = 25;
  trainer::DetectorTrainer trainer(generator, tc);
  std::cout << "training vest detector on " << split.train.size()
            << " frames...\n";
  const models::MiniYolo detector = trainer.train(
      models::YoloFamily::kV11, models::YoloSize::kMedium, split.train,
      split.val);

  vip::FallSvm fall_svm;
  {
    std::vector<vip::Pose> poses;
    std::vector<bool> labels;
    Rng pose_rng(3);
    for (int i = 0; i < 150; ++i) {
      poses.push_back(vip::sample_standing_pose(pose_rng));
      labels.push_back(false);
      poses.push_back(vip::sample_fallen_pose(pose_rng));
      labels.push_back(true);
    }
    fall_svm.train(poses, labels, pose_rng);
    std::cout << "fall SVM accuracy: "
              << fall_svm.evaluate(poses, labels) * 100.0 << "%\n\n";
  }

  // --- stream a 10-second walk and navigate ---
  dataset::VideoClip clip;
  clip.id = 0;
  clip.category = dataset::Category::kMixed;
  clip.seed = 1234;
  clip.extracted_frames = 100;
  runtime::CameraSource camera(clip, 160, 120, 5.0, 4);

  vip::NavigatorConfig config;
  config.obstacle.alert_distance_m = 2.5f;
  vip::Navigator navigator(&detector, &fall_svm, config);

  Rng frame_rng(5);
  int frames = 0, locked = 0;
  std::cout << "t(s)   track  conf   nearest-obstacle  alerts\n";
  while (auto frame = camera.next()) {
    const vip::FrameReport report = navigator.process(*frame, frame_rng);
    ++frames;
    if (report.track.locked) ++locked;

    float nearest = 1e9f;
    for (const auto& r : report.obstacles)
      nearest = std::min(nearest, r.nearest_m);

    std::cout << std::fixed << std::setprecision(1) << std::setw(4)
              << frame->timestamp_s << "   "
              << (report.track.locked ? "LOCK " : "lost ") << "  "
              << std::setprecision(2) << report.track.confidence << "   "
              << std::setprecision(1) << std::setw(5) << nearest << " m        ";
    for (const auto& alert : report.new_alerts)
      std::cout << "[" << vip::alert_kind_name(alert.kind) << "] "
                << alert.message << "  ";
    std::cout << '\n';
  }

  std::cout << "\nsummary: tracked the VIP in " << locked << "/" << frames
            << " frames; " << navigator.alerts().history().size()
            << " alerts emitted, " << navigator.alerts().suppressed()
            << " suppressed by rate limiting\n";

  // --- real-time feasibility on the edge (streaming runtime) ---------
  // The three situation-awareness models as a concurrent stage chain
  // against the drone's 30 FPS feed on an Orin Nano: bounded queues
  // shed stale frames, the watchdog guards stalled stages, and the
  // telemetry report shows where the budget goes. Replayed at 20x.
  std::cout << "\nstreaming the 30 FPS feed through "
               "vest+pose+depth on Orin Nano (drop-oldest)...\n";
  const auto& nano = devsim::device_spec(devsim::DeviceId::kOrinNano);
  runtime::PipelineBuilder builder;
  std::uint64_t seed = 11;
  for (models::ModelId id :
       {models::ModelId::kYoloV8n, models::ModelId::kTrtPose,
        models::ModelId::kMonodepth2})
    builder.stage(std::make_unique<runtime::SimulatedExecutor>(
        models::profile_model(id), nano, seed++));
  auto stream = builder.discipline(runtime::Discipline::kSequential)
                    .deadline_ms(1000.0 / 30.0)
                    .queue_capacity(4)
                    .drop_policy(runtime::DropPolicy::kDropOldest)
                    .stage_timeout_ms(500.0)
                    .emulate_occupancy()
                    .time_scale(0.05)
                    .source_fps(30.0)
                    .build_streaming();
  runtime::SyntheticSource feed(300, 30.0);
  const runtime::StreamReport report = stream->run(feed);
  std::cout << report.to_text();
  return 0;
}
