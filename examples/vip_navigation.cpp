// VIP navigation: the full Ocularone application loop.
//
// Streams a simulated drone video, runs vest detection + tracking,
// depth-based obstacle sectors, and SVM fall monitoring, and prints the
// guidance alerts a VIP would hear.
//
//   ./example_vip_navigation
#include <iomanip>
#include <iostream>

#include "trainer/detector_trainer.hpp"
#include "vip/navigator.hpp"

using namespace ocb;

int main() {
  std::cout << "Ocularone VIP navigation demo\n"
            << "=============================\n\n";

  // --- train the perception models (dataset → detector, poses → SVM) ---
  dataset::DatasetConfig dc;
  dc.scale = 0.008;
  dc.image_width = 160;
  dc.image_height = 120;
  dc.seed = 21;
  dataset::DatasetGenerator generator(dc);

  Rng rng(2);
  auto split = dataset::curated_split(generator, 0.4, rng);
  trainer::TrainConfig tc;
  tc.epochs = 25;
  trainer::DetectorTrainer trainer(generator, tc);
  std::cout << "training vest detector on " << split.train.size()
            << " frames...\n";
  const models::MiniYolo detector = trainer.train(
      models::YoloFamily::kV11, models::YoloSize::kMedium, split.train,
      split.val);

  vip::FallSvm fall_svm;
  {
    std::vector<vip::Pose> poses;
    std::vector<bool> labels;
    Rng pose_rng(3);
    for (int i = 0; i < 150; ++i) {
      poses.push_back(vip::sample_standing_pose(pose_rng));
      labels.push_back(false);
      poses.push_back(vip::sample_fallen_pose(pose_rng));
      labels.push_back(true);
    }
    fall_svm.train(poses, labels, pose_rng);
    std::cout << "fall SVM accuracy: "
              << fall_svm.evaluate(poses, labels) * 100.0 << "%\n\n";
  }

  // --- stream a 10-second walk and navigate ---
  dataset::VideoClip clip;
  clip.id = 0;
  clip.category = dataset::Category::kMixed;
  clip.seed = 1234;
  clip.extracted_frames = 100;
  runtime::CameraSource camera(clip, 160, 120, 5.0, 4);

  vip::NavigatorConfig config;
  config.obstacle.alert_distance_m = 2.5f;
  vip::Navigator navigator(&detector, &fall_svm, config);

  Rng frame_rng(5);
  int frames = 0, locked = 0;
  std::cout << "t(s)   track  conf   nearest-obstacle  alerts\n";
  while (auto frame = camera.next()) {
    const vip::FrameReport report = navigator.process(*frame, frame_rng);
    ++frames;
    if (report.track.locked) ++locked;

    float nearest = 1e9f;
    for (const auto& r : report.obstacles)
      nearest = std::min(nearest, r.nearest_m);

    std::cout << std::fixed << std::setprecision(1) << std::setw(4)
              << frame->timestamp_s << "   "
              << (report.track.locked ? "LOCK " : "lost ") << "  "
              << std::setprecision(2) << report.track.confidence << "   "
              << std::setprecision(1) << std::setw(5) << nearest << " m        ";
    for (const auto& alert : report.new_alerts)
      std::cout << "[" << vip::alert_kind_name(alert.kind) << "] "
                << alert.message << "  ";
    std::cout << '\n';
  }

  std::cout << "\nsummary: tracked the VIP in " << locked << "/" << frames
            << " frames; " << navigator.alerts().history().size()
            << " alerts emitted, " << navigator.alerts().suppressed()
            << " suppressed by rate limiting\n";
  return 0;
}
