// Dataset export: regenerate (a scaled copy of) the Ocularone dataset
// on disk — PPM images, YOLO label files, and the Roboflow-style CSV
// manifest described in §2 of the paper.
//
//   ./example_dataset_export [scale] [out-dir]
#include <iostream>

#include "dataset/annotation.hpp"
#include "dataset/sampling.hpp"

using namespace ocb;
using namespace ocb::dataset;

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::stod(argv[1]) : 0.002;
  const std::string dir = argc > 2 ? argv[2] : "ocularone_dataset";

  DatasetConfig config;
  config.scale = scale;
  config.image_width = 320;
  config.image_height = 240;
  config.seed = 42;
  const DatasetGenerator generator(config);

  std::cout << "generating " << generator.samples().size()
            << " annotated frames (" << generator.videos().size()
            << " videos, scale " << scale << ") into " << dir << "/\n";

  const std::size_t written =
      export_dataset(generator, generator.samples(), dir);
  std::cout << "wrote " << written << " images + labels + _annotations.csv\n";

  std::cout << "\nper-category counts:\n";
  for (const CategoryInfo& info : category_table())
    std::cout << "  " << category_name(info.category) << ": "
              << generator.count(info.category) << " (paper: "
              << info.paper_count << ")\n";
  std::cout << "\nfull-scale regeneration: ./example_dataset_export 1.0\n";
  return 0;
}
