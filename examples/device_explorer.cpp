// Device explorer: "which model can I afford on which device?"
//
// Walks every (model, device) pair through the roofline simulator and
// prints a feasibility matrix against a latency budget, then asks the
// placement advisor for the best edge-cloud deployment — the
// accuracy-aware adaptive strategy the paper's conclusions call for.
//
//   ./example_device_explorer [budget-ms]
#include <iomanip>
#include <iostream>

#include "models/registry.hpp"
#include "runtime/placement.hpp"

using namespace ocb;
using namespace ocb::devsim;
using namespace ocb::models;

int main(int argc, char** argv) {
  const double budget = argc > 1 ? std::stod(argv[1]) : 200.0;
  std::cout << "Ocularone device explorer (budget " << budget << " ms)\n"
            << "===========================================\n\n";

  // Latency matrix.
  std::cout << std::left << std::setw(12) << "model";
  for (const DeviceSpec& dev : device_table())
    std::cout << std::right << std::setw(10) << dev.short_name;
  std::cout << "\n";
  for (const ModelInfo& info : model_table()) {
    const auto profile = profile_model(info.id);
    std::cout << std::left << std::setw(12) << info.name;
    for (const DeviceSpec& dev : device_table()) {
      const double ms = model_latency_ms(profile, dev);
      std::ostringstream cell;
      cell << std::fixed << std::setprecision(0) << ms
           << (ms <= budget ? " *" : "  ");
      std::cout << std::right << std::setw(10) << cell.str();
    }
    std::cout << "\n";
  }
  std::cout << "\n(* = meets the " << budget << " ms budget)\n\n";

  // Best placement per device with Fig-3-shaped accuracies.
  const std::vector<runtime::Candidate> candidates = {
      {profile_model(ModelId::kYoloV8n), 0.986},
      {profile_model(ModelId::kYoloV8m), 0.990},
      {profile_model(ModelId::kYoloV8x), 0.991},
      {profile_model(ModelId::kYoloV11n), 0.986},
      {profile_model(ModelId::kYoloV11m), 0.9949},
      {profile_model(ModelId::kYoloV11x), 0.9927},
  };
  std::cout << "best vest detector per device within budget:\n";
  for (const DeviceSpec& dev : device_table()) {
    const auto best = runtime::best_on_device(candidates, dev.id, budget);
    std::cout << "  " << std::left << std::setw(9) << dev.short_name;
    if (best)
      std::cout << best->model_name << "  (" << std::fixed
                << std::setprecision(1) << best->latency_ms << " ms, "
                << std::setprecision(2) << best->accuracy * 100.0 << "%)\n";
    else
      std::cout << "nothing fits\n";
  }

  std::cout << "\nedge-cloud plans (30 ms RTT):\n";
  for (DeviceId edge : edge_devices()) {
    const auto plan =
        runtime::plan_edge_cloud(candidates, edge, budget, 30.0);
    std::cout << "  " << std::left << std::setw(9)
              << device_spec(edge).short_name;
    if (!plan) {
      std::cout << "no feasible plan\n";
      continue;
    }
    std::cout << "edge " << plan->edge.model_name;
    if (plan->cloud)
      std::cout << " + cloud " << plan->cloud->model_name << " (+"
                << std::fixed << std::setprecision(2)
                << (plan->cloud->accuracy - plan->edge.accuracy) * 100.0
                << "% accuracy)";
    else
      std::cout << " (cloud not worthwhile)";
    std::cout << "\n";
  }
  return 0;
}
