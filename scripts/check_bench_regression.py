#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the committed baseline.

Fails (exit 1) when any model's SIMD ns/frame regresses more than
--tolerance (default 15%) over the baseline, when the GEMM
SIMD-vs-scalar speedup drops below --min-gemm-speedup on a machine
whose dispatcher reports a SIMD level, when the INT8 GEMM fails to
reach --min-int8-speedup over the FP32 SIMD kernel on the best shape,
or when a kernel dispatched to a different path than the active SIMD
level promises (a silent scalar fallback).

Absolute ns/frame is only comparable on the machine that produced the
baseline; on shared CI runners pass --ratio-only, which checks the
machine-relative quantities (per-model scalar/SIMD speedup and GEMM
GFLOP/s ratios) instead of wall-clock numbers.

Also understands BENCH_multi_model.json (top-level "bench":
"multi_model"): fails when the micro-batched aggregate throughput
speedup drops below --min-batch-speedup (default 1.5), when the
scheduler stopped forming batches (mean batch size 1), or when the
per-model p99 serve latencies violate the priority ordering
critical < high < normal. All multi-model quantities are
machine-relative (modelled stream clock), so they hold on any runner.

Usage:
  scripts/check_bench_regression.py BENCH_kernels.json \
      --baseline bench/baselines/BENCH_kernels.json [--tolerance 0.15]
  scripts/check_bench_regression.py BENCH_multi_model.json \
      --baseline bench/baselines/BENCH_multi_model.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def index_by(items: list[dict], key: str) -> dict[str, dict]:
    return {item[key]: item for item in items}


PRIORITY_ORDER = {"critical": 0, "high": 1, "normal": 2}


def check_multi_model(current: dict, min_speedup: float) -> list[str]:
    """Gate the serving-scheduler bench: batching must pay off and the
    priority classes must actually shape the latency distribution."""
    failures: list[str] = []
    speedup = current.get("batched_speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"micro-batching speedup {speedup:.2f} below required "
            f"{min_speedup:.2f}"
        )
    models = current.get("models", [])
    for model in models:
        if model.get("mean_batch", 0.0) <= 1.0:
            failures.append(
                f"{model['model']}: scheduler formed no batches "
                f"(mean batch {model.get('mean_batch', 0.0):.2f})"
            )
    ranked = sorted(
        models, key=lambda m: PRIORITY_ORDER.get(m.get("priority"), 99)
    )
    for higher, lower in zip(ranked, ranked[1:]):
        if (
            higher["p99_serve_ms_batched"]
            >= lower["p99_serve_ms_batched"]
        ):
            failures.append(
                f"p99 ordering violated: {higher['model']} "
                f"({higher['priority']}, "
                f"{higher['p99_serve_ms_batched']:.1f} ms) not faster "
                f"than {lower['model']} ({lower['priority']}, "
                f"{lower['p99_serve_ms_batched']:.1f} ms)"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_kernels.json")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_kernels.json",
        help="committed reference results",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional ns/frame regression (0.15 = 15%%)",
    )
    parser.add_argument(
        "--min-gemm-speedup",
        type=float,
        default=2.0,
        help="minimum SIMD-vs-scalar GEMM speedup when SIMD is active",
    )
    parser.add_argument(
        "--min-int8-speedup",
        type=float,
        default=1.0,
        help="minimum INT8-vs-FP32-SIMD GEMM throughput ratio on the "
        "best shape when SIMD is active",
    )
    parser.add_argument(
        "--ratio-only",
        action="store_true",
        help="skip wall-clock comparisons (cross-machine CI runners)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.5,
        help="minimum micro-batched vs frame-at-a-time aggregate "
        "throughput ratio (multi-model bench)",
    )
    args = parser.parse_args()

    current = load(args.current)

    if current.get("bench") == "multi_model":
        failures = check_multi_model(current, args.min_batch_speedup)
        if failures:
            print("bench regression check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            "bench regression check passed (multi-model: speedup "
            f"{current.get('batched_speedup', 0.0):.2f}, "
            f"{len(current.get('models', []))} models, priority p99 "
            "ordering holds)"
        )
        return 0

    baseline = load(args.baseline)
    failures: list[str] = []
    simd_active = current.get("simd", "scalar") != "scalar"

    base_models = index_by(baseline.get("models", []), "name")
    for model in current.get("models", []):
        name = model["name"]
        if not args.ratio_only:
            base = base_models.get(name)
            if base is None:
                continue
            limit = base["simd_ns_frame"] * (1.0 + args.tolerance)
            if model["simd_ns_frame"] > limit:
                failures.append(
                    f"{name}: simd ns/frame {model['simd_ns_frame']:.0f} "
                    f"exceeds baseline {base['simd_ns_frame']:.0f} "
                    f"+{args.tolerance:.0%}"
                )
        if simd_active and model["speedup"] < 1.0 - args.tolerance:
            failures.append(
                f"{name}: SIMD path slower than scalar "
                f"(speedup {model['speedup']:.2f})"
            )

    if simd_active:
        speedups = [g["speedup"] for g in current.get("gemm", [])]
        if speedups and max(speedups) < args.min_gemm_speedup:
            failures.append(
                f"best GEMM speedup {max(speedups):.2f} below required "
                f"{args.min_gemm_speedup:.2f}"
            )
        int8_speedups = [
            g["int8_speedup"]
            for g in current.get("gemm", [])
            if "int8_speedup" in g
        ]
        if int8_speedups and max(int8_speedups) < args.min_int8_speedup:
            failures.append(
                f"best INT8 GEMM speedup {max(int8_speedups):.2f} below "
                f"required {args.min_int8_speedup:.2f}"
            )
        # Dispatch audit: with SIMD active, every shape must have taken
        # the advertised path — the scalar kernel reaching these numbers
        # would mean the dispatcher silently fell back.
        level = current.get("simd", "scalar")
        for g in current.get("gemm", []):
            for field in ("simd_path", "int8_path"):
                path = g.get(field)
                if path is not None and path != level:
                    failures.append(
                        f"gemm {g['label']!r}: {field} took {path!r}, "
                        f"expected active level {level!r}"
                    )
            scalar_path = g.get("scalar_path")
            if scalar_path is not None and scalar_path != "scalar":
                failures.append(
                    f"gemm {g['label']!r}: forced-scalar measurement "
                    f"dispatched to {scalar_path!r}"
                )

    if failures:
        print("bench regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    checked = "ratios" if args.ratio_only else "ns/frame and ratios"
    print(
        f"bench regression check passed ({checked}, "
        f"{len(current.get('models', []))} models, simd={current.get('simd')})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
