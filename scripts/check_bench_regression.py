#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the committed baseline.

Fails (exit 1) when any model's SIMD ns/frame regresses more than
--tolerance (default 15%) over the baseline, when the GEMM
SIMD-vs-scalar speedup drops below --min-gemm-speedup on a machine
whose dispatcher reports a SIMD level, when the INT8 GEMM fails to
reach --min-int8-speedup over the FP32 SIMD kernel on the best shape,
or when a kernel dispatched to a different path than the active SIMD
level promises (a silent scalar fallback).

Absolute ns/frame is only comparable on the machine that produced the
baseline; on shared CI runners pass --ratio-only, which checks the
machine-relative quantities (per-model scalar/SIMD speedup and GEMM
GFLOP/s ratios) instead of wall-clock numbers.

Usage:
  scripts/check_bench_regression.py BENCH_kernels.json \
      --baseline bench/baselines/BENCH_kernels.json [--tolerance 0.15]
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def index_by(items: list[dict], key: str) -> dict[str, dict]:
    return {item[key]: item for item in items}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_kernels.json")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_kernels.json",
        help="committed reference results",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional ns/frame regression (0.15 = 15%%)",
    )
    parser.add_argument(
        "--min-gemm-speedup",
        type=float,
        default=2.0,
        help="minimum SIMD-vs-scalar GEMM speedup when SIMD is active",
    )
    parser.add_argument(
        "--min-int8-speedup",
        type=float,
        default=1.0,
        help="minimum INT8-vs-FP32-SIMD GEMM throughput ratio on the "
        "best shape when SIMD is active",
    )
    parser.add_argument(
        "--ratio-only",
        action="store_true",
        help="skip wall-clock comparisons (cross-machine CI runners)",
    )
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    failures: list[str] = []
    simd_active = current.get("simd", "scalar") != "scalar"

    base_models = index_by(baseline.get("models", []), "name")
    for model in current.get("models", []):
        name = model["name"]
        if not args.ratio_only:
            base = base_models.get(name)
            if base is None:
                continue
            limit = base["simd_ns_frame"] * (1.0 + args.tolerance)
            if model["simd_ns_frame"] > limit:
                failures.append(
                    f"{name}: simd ns/frame {model['simd_ns_frame']:.0f} "
                    f"exceeds baseline {base['simd_ns_frame']:.0f} "
                    f"+{args.tolerance:.0%}"
                )
        if simd_active and model["speedup"] < 1.0 - args.tolerance:
            failures.append(
                f"{name}: SIMD path slower than scalar "
                f"(speedup {model['speedup']:.2f})"
            )

    if simd_active:
        speedups = [g["speedup"] for g in current.get("gemm", [])]
        if speedups and max(speedups) < args.min_gemm_speedup:
            failures.append(
                f"best GEMM speedup {max(speedups):.2f} below required "
                f"{args.min_gemm_speedup:.2f}"
            )
        int8_speedups = [
            g["int8_speedup"]
            for g in current.get("gemm", [])
            if "int8_speedup" in g
        ]
        if int8_speedups and max(int8_speedups) < args.min_int8_speedup:
            failures.append(
                f"best INT8 GEMM speedup {max(int8_speedups):.2f} below "
                f"required {args.min_int8_speedup:.2f}"
            )
        # Dispatch audit: with SIMD active, every shape must have taken
        # the advertised path — the scalar kernel reaching these numbers
        # would mean the dispatcher silently fell back.
        level = current.get("simd", "scalar")
        for g in current.get("gemm", []):
            for field in ("simd_path", "int8_path"):
                path = g.get(field)
                if path is not None and path != level:
                    failures.append(
                        f"gemm {g['label']!r}: {field} took {path!r}, "
                        f"expected active level {level!r}"
                    )
            scalar_path = g.get("scalar_path")
            if scalar_path is not None and scalar_path != "scalar":
                failures.append(
                    f"gemm {g['label']!r}: forced-scalar measurement "
                    f"dispatched to {scalar_path!r}"
                )

    if failures:
        print("bench regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    checked = "ratios" if args.ratio_only else "ns/frame and ratios"
    print(
        f"bench regression check passed ({checked}, "
        f"{len(current.get('models', []))} models, simd={current.get('simd')})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
