#!/usr/bin/env python3
"""Compare a fresh BENCH_kernels.json against the committed baseline.

Fails (exit 1) when any model's SIMD ns/frame regresses more than
--tolerance (default 15%) over the baseline, when the GEMM
SIMD-vs-scalar speedup drops below --min-gemm-speedup on a machine
whose dispatcher reports a SIMD level, when the INT8 GEMM fails to
reach --min-int8-speedup over the FP32 SIMD kernel on the best shape,
or when a kernel dispatched to a different path than the active SIMD
level promises (a silent scalar fallback).

Absolute ns/frame is only comparable on the machine that produced the
baseline; on shared CI runners pass --ratio-only, which checks the
machine-relative quantities (per-model scalar/SIMD speedup and GEMM
GFLOP/s ratios) instead of wall-clock numbers.

Also understands BENCH_multi_model.json (top-level "bench":
"multi_model"): fails when the micro-batched aggregate throughput
speedup drops below --min-batch-speedup (default 1.5), when the
scheduler stopped forming batches (mean batch size 1), or when the
per-model p99 serve latencies violate the priority ordering
critical < high < normal. All multi-model quantities are
machine-relative (modelled stream clock), so they hold on any runner.

Also understands BENCH_planner.json (top-level "bench": "planner"):
with SIMD active, fails when the kernel planner stopped picking
Winograd on any 3x3 stage, when the best Winograd layer's measured
speedup over always-im2col drops below --min-winograd-speedup
(default 1.5), when any planner choice is measurably SLOWER than
im2col (a cost-model mischoice), or when the planned engine's output
diverges from the legacy im2col engine. Layer/model speedups are
machine-relative; planned ns/frame is additionally compared against
the baseline unless --ratio-only.

Also understands BENCH_pareto.json (top-level "bench": "pareto"), the
accuracy-vs-speed frontier over the compressed execution formats. With
SIMD active, fails when the sparse packed GEMM stops clearing
--min-sparse-speedup (default 1.3) over the masked-dense kernel at
50% N:M on the conv-heavy gate shape, when the fp16-storage kernel's
best bandwidth-bound point drops below --min-fp16-speedup (default
1.2), when an nm50-planned engine measures slower than its fp32
baseline beyond the tolerance, or when the planner stopped selecting
any sparse/fp16 kernels at all (the observability counters). At any
SIMD level, fails when the sparse engine diverges from its
hand-masked dense twin beyond 1e-4 or when a gated frontier variant's
trained-detector accuracy moved more than --max-accuracy-delta-pt
(default 1.5 percentage points) from fp32. Kernel/engine speedups are
machine-relative; frontier ns/frame is additionally compared against
the baseline unless --ratio-only.

Also understands BENCH_fusion.json (top-level "bench": "fusion"), the
fused execution stack (im2col-free conv packing + residual/concat
fusion + liveness arena) against the pre-fusion planner path. Fails
when any model's fused engine diverges from the unfused baseline
beyond 1e-5, when a warmed fused frame performed heap allocations
(only enforced when the build counts them), when any model's fused
engine is slower than its baseline beyond the tolerance, or when the
gate model (the largest conv-heavy graph) drops below
--min-fusion-speedup, below --min-arena-reduction (default 0.30)
peak-activation-arena shrink, or stops fusing anything at all. The
speedup floor defaults to 0.95: a compute-bound single-core x86
runner measures a 1.05-1.12x fused mean but draws +/-8% run-to-run
noise under host contention, so the default floor is a
mispick-regression catcher (the planner-bug class measures <=0.90),
not a certification of the mean — the per-layer fused-packing win is
gated robustly by the planner bench, and bandwidth-bound Jetson-class
hosts should raise the floor to 1.25 (see EXPERIMENTS.md). Speedups and arena ratios are machine-relative; fused
ns/frame is additionally compared against the baseline file unless
--ratio-only.

Also understands BENCH_fault.json (top-level "bench": "fault"), the
fault-injection resilience bench (DESIGN.md §14). Fails when the
checksum layer's verify-cadence overhead exceeds
--max-verify-overhead-pct (default 2.0) of the median clean frame,
when a warmed verify-enabled frame performed heap allocations (only
enforced when the build counts them), when any model's injected
corruption went undetected (recovery.detected false or zero flips
landed), when recovery failed to restore bit-exact clean outputs
(max_abs_diff_after != 0), when the serving quarantine took more than
--max-quarantine-frames (default 4) to bench a corrupted model or
never re-admitted it after reload, or when a devsim degradation mode
failed to slow the modelled device. All fault quantities are
machine-relative, so they hold on any runner.

Usage:
  scripts/check_bench_regression.py BENCH_kernels.json \
      --baseline bench/baselines/BENCH_kernels.json [--tolerance 0.15]
  scripts/check_bench_regression.py BENCH_multi_model.json \
      --baseline bench/baselines/BENCH_multi_model.json
  scripts/check_bench_regression.py BENCH_planner.json \
      --baseline bench/baselines/BENCH_planner.json
  scripts/check_bench_regression.py BENCH_pareto.json \
      --baseline bench/baselines/BENCH_pareto.json
  scripts/check_bench_regression.py BENCH_fusion.json \
      --baseline bench/baselines/BENCH_fusion.json
  scripts/check_bench_regression.py BENCH_fault.json \
      --baseline bench/baselines/BENCH_fault.json
"""

from __future__ import annotations

import argparse
import json
import sys


def load(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def index_by(items: list[dict], key: str) -> dict[str, dict]:
    return {item[key]: item for item in items}


PRIORITY_ORDER = {"critical": 0, "high": 1, "normal": 2}


def check_multi_model(current: dict, min_speedup: float) -> list[str]:
    """Gate the serving-scheduler bench: batching must pay off and the
    priority classes must actually shape the latency distribution."""
    failures: list[str] = []
    speedup = current.get("batched_speedup", 0.0)
    if speedup < min_speedup:
        failures.append(
            f"micro-batching speedup {speedup:.2f} below required "
            f"{min_speedup:.2f}"
        )
    models = current.get("models", [])
    for model in models:
        if model.get("mean_batch", 0.0) <= 1.0:
            failures.append(
                f"{model['model']}: scheduler formed no batches "
                f"(mean batch {model.get('mean_batch', 0.0):.2f})"
            )
    ranked = sorted(
        models, key=lambda m: PRIORITY_ORDER.get(m.get("priority"), 99)
    )
    for higher, lower in zip(ranked, ranked[1:]):
        if (
            higher["p99_serve_ms_batched"]
            >= lower["p99_serve_ms_batched"]
        ):
            failures.append(
                f"p99 ordering violated: {higher['model']} "
                f"({higher['priority']}, "
                f"{higher['p99_serve_ms_batched']:.1f} ms) not faster "
                f"than {lower['model']} ({lower['priority']}, "
                f"{lower['p99_serve_ms_batched']:.1f} ms)"
            )
    return failures


MAX_PLANNED_ABS_DIFF = 1e-4


def check_planner(
    current: dict,
    baseline: dict | None,
    tolerance: float,
    min_winograd_speedup: float,
    ratio_only: bool,
) -> list[str]:
    """Gate the conv-planner bench: the cost model must keep choosing
    kernels that are actually faster, and the planned engine must stay
    numerically equivalent to the legacy im2col engine."""
    failures: list[str] = []
    simd_active = current.get("simd", "scalar") != "scalar"
    layers = current.get("layers", [])

    winograd_speedups = [
        layer["speedup"] for layer in layers if layer["chosen"] == "winograd"
    ]
    if simd_active:
        if not winograd_speedups:
            failures.append(
                "planner chose winograd on no 3x3 stage (SIMD active)"
            )
        elif max(winograd_speedups) < min_winograd_speedup:
            failures.append(
                f"best winograd layer speedup {max(winograd_speedups):.2f} "
                f"below required {min_winograd_speedup:.2f}"
            )
    for layer in layers:
        if layer["chosen"] != "im2col" and layer["speedup"] < 1.0 - tolerance:
            failures.append(
                f"{layer['label']}: planner chose {layer['chosen']} but it "
                f"measured {layer['speedup']:.2f}x vs im2col (mischoice)"
            )

    base_models = (
        index_by(baseline.get("models", []), "name") if baseline else {}
    )
    for model in current.get("models", []):
        name = model["name"]
        if model["max_abs_diff"] > MAX_PLANNED_ABS_DIFF:
            failures.append(
                f"{name}: planned engine diverges from legacy im2col engine "
                f"(max |diff| {model['max_abs_diff']:.2e})"
            )
        if model["speedup"] < 1.0 - tolerance:
            failures.append(
                f"{name}: planned engine slower than legacy im2col engine "
                f"(speedup {model['speedup']:.2f})"
            )
        if not ratio_only:
            base = base_models.get(name)
            if base is None:
                continue
            limit = base["planned_ns_frame"] * (1.0 + tolerance)
            if model["planned_ns_frame"] > limit:
                failures.append(
                    f"{name}: planned ns/frame "
                    f"{model['planned_ns_frame']:.0f} exceeds baseline "
                    f"{base['planned_ns_frame']:.0f} +{tolerance:.0%}"
                )
    return failures


def check_pareto(
    current: dict,
    baseline: dict | None,
    tolerance: float,
    min_sparse_speedup: float,
    min_fp16_speedup: float,
    max_accuracy_delta_pt: float,
    ratio_only: bool,
) -> list[str]:
    """Gate the compression Pareto bench: the sparse/fp16 kernels must
    keep their structural speedups, the sparse engine must stay
    numerically equivalent to masked-dense, and the gated variants must
    hold the trained-detector accuracy budget."""
    failures: list[str] = []
    simd_active = current.get("simd", "scalar") != "scalar"
    gates = current.get("kernel_gates", {})
    frontier = current.get("frontier", [])

    if simd_active:
        nm50 = [
            g["speedup"]
            for g in gates.get("sparse", [])
            if g.get("sparsity_pct") == 50
        ]
        if not nm50:
            failures.append("no 50% N:M sparse kernel gate point")
        elif max(nm50) < min_sparse_speedup:
            failures.append(
                f"sparse GEMM speedup at 50% N:M {max(nm50):.2f} below "
                f"required {min_sparse_speedup:.2f}"
            )
        fp16 = [g["speedup"] for g in gates.get("fp16", [])]
        if not fp16:
            failures.append("no fp16-storage kernel gate point")
        elif max(fp16) < min_fp16_speedup:
            failures.append(
                f"best fp16-storage GEMM speedup {max(fp16):.2f} below "
                f"required {min_fp16_speedup:.2f}"
            )
        # Observability: pruning/fp16 requests must actually reach the
        # kernels — a frontier where the planner never picks a
        # compressed format is all control flow and no effect.
        nm_rows = [p for p in frontier if p["variant"].startswith("nm")]
        fp16_rows = [p for p in frontier if "fp16" in p["variant"]]
        if nm_rows and max(p["sparse_nodes"] for p in nm_rows) < 1:
            failures.append(
                "no frontier N:M variant ran any sparse-planned node"
            )
        if fp16_rows and max(p["fp16_nodes"] for p in fp16_rows) < 1:
            failures.append(
                "no frontier fp16 variant ran any half-stored node"
            )
        for point in frontier:
            if (
                point["variant"] == "nm50"
                and point["speedup_vs_fp32"] < 1.0 - tolerance
            ):
                failures.append(
                    f"{point['model']}: nm50 engine slower than fp32 "
                    f"(speedup {point['speedup_vs_fp32']:.2f})"
                )

    equivalence = current.get("equivalence", {})
    if equivalence.get("max_abs_diff", 0.0) > MAX_PLANNED_ABS_DIFF:
        failures.append(
            f"{equivalence.get('model')}: sparse engine diverges from "
            f"masked-dense twin (max |diff| "
            f"{equivalence['max_abs_diff']:.2e})"
        )
    if simd_active and equivalence.get("sparse_nodes", 0) < 1:
        failures.append(
            "equivalence run planned no sparse nodes (nothing compared)"
        )

    for point in frontier:
        if point.get("gated") and "delta_accuracy_pt" in point:
            if abs(point["delta_accuracy_pt"]) > max_accuracy_delta_pt:
                failures.append(
                    f"{point['model']} {point['variant']}: accuracy moved "
                    f"{point['delta_accuracy_pt']:+.2f} pt vs fp32 "
                    f"(budget ±{max_accuracy_delta_pt:.1f})"
                )

    if not ratio_only and baseline is not None:
        base_points = {
            (p["model"], p["variant"]): p
            for p in baseline.get("frontier", [])
        }
        for point in frontier:
            base = base_points.get((point["model"], point["variant"]))
            if base is None:
                continue
            limit = base["ns_frame"] * (1.0 + tolerance)
            if point["ns_frame"] > limit:
                failures.append(
                    f"{point['model']} {point['variant']}: ns/frame "
                    f"{point['ns_frame']:.0f} exceeds baseline "
                    f"{base['ns_frame']:.0f} +{tolerance:.0%}"
                )
    return failures


MAX_FUSED_ABS_DIFF = 1e-5


def check_fusion(
    current: dict,
    baseline: dict | None,
    tolerance: float,
    min_fusion_speedup: float,
    min_arena_reduction: float,
    ratio_only: bool,
) -> list[str]:
    """Gate the fused-execution bench: every model must stay equivalent
    and allocation-free when warmed, and the gate model must hold the
    fusion speedup and arena-reduction floors."""
    failures: list[str] = []
    models = current.get("models", [])
    by_name = index_by(models, "name")
    alloc_counting = current.get("alloc_counting", False)

    for model in models:
        name = model["name"]
        if model["max_abs_diff"] > MAX_FUSED_ABS_DIFF:
            failures.append(
                f"{name}: fused engine diverges from unfused baseline "
                f"(max |diff| {model['max_abs_diff']:.2e})"
            )
        if alloc_counting and model["warm_allocs"] != 0:
            failures.append(
                f"{name}: warmed fused frame performed "
                f"{model['warm_allocs']} heap allocation(s)"
            )
        if model["speedup"] < 1.0 - tolerance:
            failures.append(
                f"{name}: fused engine slower than pre-fusion baseline "
                f"(speedup {model['speedup']:.2f})"
            )

    gate_name = current.get("gate_model")
    gate = by_name.get(gate_name)
    if gate is None:
        failures.append(f"gate model {gate_name!r} missing from results")
        return failures
    if gate["speedup"] < min_fusion_speedup:
        failures.append(
            f"{gate_name}: gate fusion speedup {gate['speedup']:.3f} below "
            f"required {min_fusion_speedup:.3f}"
        )
    if gate["arena_reduction"] < min_arena_reduction:
        failures.append(
            f"{gate_name}: arena reduction {gate['arena_reduction']:.2%} "
            f"below required {min_arena_reduction:.0%}"
        )
    if gate["residual_fused"] < 1 or gate["concat_elided"] < 1:
        failures.append(
            f"{gate_name}: fusion pass found nothing to fuse "
            f"(residual {gate['residual_fused']}, "
            f"concat {gate['concat_elided']})"
        )

    if not ratio_only and baseline is not None:
        base_models = index_by(baseline.get("models", []), "name")
        for model in models:
            base = base_models.get(model["name"])
            if base is None:
                continue
            limit = base["fused_ns_frame"] * (1.0 + tolerance)
            if model["fused_ns_frame"] > limit:
                failures.append(
                    f"{model['name']}: fused ns/frame "
                    f"{model['fused_ns_frame']:.0f} exceeds baseline "
                    f"{base['fused_ns_frame']:.0f} +{tolerance:.0%}"
                )
    return failures


def check_fault(
    current: dict,
    max_verify_overhead_pct: float,
    max_quarantine_frames: int,
) -> list[str]:
    """Gate the fault-injection bench: the checksum layer must stay
    cheap on the clean path and actually detect + repair corruption,
    and the serving quarantine must bench and re-admit a faulted model
    within the frame budget."""
    failures: list[str] = []
    alloc_counting = current.get("alloc_counting", False)

    overhead = current.get("verify_overhead_pct", 0.0)
    if overhead > max_verify_overhead_pct:
        failures.append(
            f"checksum verify overhead {overhead:.2f}% of median frame "
            f"exceeds budget {max_verify_overhead_pct:.2f}%"
        )

    for model in current.get("models", []):
        name = model["name"]
        if alloc_counting and model.get("warm_allocs", 0) != 0:
            failures.append(
                f"{name}: warmed verify-enabled frame performed "
                f"{model['warm_allocs']} heap allocation(s)"
            )
        recovery = model.get("recovery", {})
        if recovery.get("flips", 0) <= 0:
            failures.append(f"{name}: injection landed no bit flips")
        if not recovery.get("detected", False):
            failures.append(
                f"{name}: injected weight corruption went undetected"
            )
        if recovery.get("max_abs_diff_after", 1.0) != 0.0:
            failures.append(
                f"{name}: recovery did not restore bit-exact outputs "
                f"(max |diff| after "
                f"{recovery.get('max_abs_diff_after'):.2e})"
            )
        quarantine = model.get("quarantine", {})
        frames = quarantine.get("frames_to_quarantine", -1)
        if frames < 0 or frames > max_quarantine_frames:
            failures.append(
                f"{name}: corrupted model not quarantined within "
                f"{max_quarantine_frames} frames (took {frames})"
            )
        if not quarantine.get("readmitted", False):
            failures.append(
                f"{name}: quarantined model never re-admitted after reload"
            )

    devsim = current.get("devsim", {})
    for mode in ("thermal_slowdown", "bandwidth_slowdown"):
        if devsim.get(mode, 0.0) <= 1.0:
            failures.append(
                f"devsim {mode} {devsim.get(mode, 0.0):.2f} does not slow "
                "the modelled device"
            )
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="freshly generated BENCH_kernels.json")
    parser.add_argument(
        "--baseline",
        default="bench/baselines/BENCH_kernels.json",
        help="committed reference results",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.15,
        help="allowed fractional ns/frame regression (0.15 = 15%%)",
    )
    parser.add_argument(
        "--min-gemm-speedup",
        type=float,
        default=2.0,
        help="minimum SIMD-vs-scalar GEMM speedup when SIMD is active",
    )
    parser.add_argument(
        "--min-int8-speedup",
        type=float,
        default=1.0,
        help="minimum INT8-vs-FP32-SIMD GEMM throughput ratio on the "
        "best shape when SIMD is active",
    )
    parser.add_argument(
        "--ratio-only",
        action="store_true",
        help="skip wall-clock comparisons (cross-machine CI runners)",
    )
    parser.add_argument(
        "--min-batch-speedup",
        type=float,
        default=1.5,
        help="minimum micro-batched vs frame-at-a-time aggregate "
        "throughput ratio (multi-model bench)",
    )
    parser.add_argument(
        "--min-winograd-speedup",
        type=float,
        default=1.5,
        help="minimum measured speedup of the best winograd-planned "
        "layer over always-im2col (planner bench, SIMD active)",
    )
    parser.add_argument(
        "--min-sparse-speedup",
        type=float,
        default=1.3,
        help="minimum sparse-vs-masked-dense GEMM speedup at 50%% N:M "
        "on the conv gate shape (pareto bench, SIMD active)",
    )
    parser.add_argument(
        "--min-fp16-speedup",
        type=float,
        default=1.2,
        help="minimum fp16-storage GEMM speedup on the best "
        "bandwidth-bound gate shape (pareto bench, SIMD active)",
    )
    parser.add_argument(
        "--min-fusion-speedup",
        type=float,
        default=0.95,
        help="minimum gate-model fused-vs-baseline frame speedup "
        "(fusion bench; the default catches mispick-class regressions "
        "under shared-runner noise — raise to 1.25 on bandwidth-bound "
        "hosts)",
    )
    parser.add_argument(
        "--min-arena-reduction",
        type=float,
        default=0.30,
        help="minimum gate-model peak-activation-arena reduction "
        "(fusion bench; 0.30 = 30%%)",
    )
    parser.add_argument(
        "--max-accuracy-delta-pt",
        type=float,
        default=1.5,
        help="largest trained-detector accuracy move (percentage "
        "points vs fp32) a gated pareto variant may show",
    )
    parser.add_argument(
        "--max-verify-overhead-pct",
        type=float,
        default=2.0,
        help="largest checksum-verify overhead (%% of the median clean "
        "frame at the default cadence) the fault bench may show",
    )
    parser.add_argument(
        "--max-quarantine-frames",
        type=int,
        default=4,
        help="frames the serving quarantine may take to bench a model "
        "failing its checksum sweep (fault bench)",
    )
    args = parser.parse_args()

    current = load(args.current)

    if current.get("bench") == "fault":
        failures = check_fault(
            current,
            args.max_verify_overhead_pct,
            args.max_quarantine_frames,
        )
        if failures:
            print("bench regression check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        models = current.get("models", [])
        worst_frames = max(
            (
                m.get("quarantine", {}).get("frames_to_quarantine", -1)
                for m in models
            ),
            default=-1,
        )
        print(
            "bench regression check passed (fault: "
            f"{len(models)} models, verify overhead "
            f"{current.get('verify_overhead_pct', 0.0):.2f}%, recovery "
            "bit-exact, quarantine within "
            f"{worst_frames} frame(s), simd={current.get('simd')})"
        )
        return 0

    if current.get("bench") == "fusion":
        try:
            baseline = load(args.baseline)
        except OSError:
            baseline = None
        failures = check_fusion(
            current,
            baseline,
            args.tolerance,
            args.min_fusion_speedup,
            args.min_arena_reduction,
            args.ratio_only,
        )
        if failures:
            print("bench regression check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        gate = index_by(current.get("models", []), "name").get(
            current.get("gate_model"), {}
        )
        print(
            "bench regression check passed (fusion: "
            f"{len(current.get('models', []))} models, gate "
            f"{current.get('gate_model')} speedup "
            f"{gate.get('speedup', 0.0):.2f}x, arena "
            f"-{gate.get('arena_reduction', 0.0):.0%}, "
            f"simd={current.get('simd')})"
        )
        return 0

    if current.get("bench") == "pareto":
        try:
            baseline = load(args.baseline)
        except OSError:
            baseline = None
        failures = check_pareto(
            current,
            baseline,
            args.tolerance,
            args.min_sparse_speedup,
            args.min_fp16_speedup,
            args.max_accuracy_delta_pt,
            args.ratio_only,
        )
        if failures:
            print("bench regression check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        gates = current.get("kernel_gates", {})
        nm50 = max(
            (
                g["speedup"]
                for g in gates.get("sparse", [])
                if g.get("sparsity_pct") == 50
            ),
            default=0.0,
        )
        fp16 = max(
            (g["speedup"] for g in gates.get("fp16", [])), default=0.0
        )
        print(
            "bench regression check passed (pareto: "
            f"{len(current.get('frontier', []))} frontier points, sparse "
            f"nm50 {nm50:.2f}x, fp16 {fp16:.2f}x, "
            f"simd={current.get('simd')})"
        )
        return 0

    if current.get("bench") == "planner":
        try:
            baseline = load(args.baseline)
        except OSError:
            baseline = None
        failures = check_planner(
            current,
            baseline,
            args.tolerance,
            args.min_winograd_speedup,
            args.ratio_only,
        )
        if failures:
            print("bench regression check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        layers = current.get("layers", [])
        wino = [l for l in layers if l["chosen"] == "winograd"]
        best = max((l["speedup"] for l in wino), default=0.0)
        print(
            "bench regression check passed (planner: "
            f"{len(layers)} layers, {len(wino)} winograd, best winograd "
            f"speedup {best:.2f}, simd={current.get('simd')})"
        )
        return 0

    if current.get("bench") == "multi_model":
        failures = check_multi_model(current, args.min_batch_speedup)
        if failures:
            print("bench regression check FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print(
            "bench regression check passed (multi-model: speedup "
            f"{current.get('batched_speedup', 0.0):.2f}, "
            f"{len(current.get('models', []))} models, priority p99 "
            "ordering holds)"
        )
        return 0

    baseline = load(args.baseline)
    failures: list[str] = []
    simd_active = current.get("simd", "scalar") != "scalar"

    base_models = index_by(baseline.get("models", []), "name")
    for model in current.get("models", []):
        name = model["name"]
        if not args.ratio_only:
            base = base_models.get(name)
            if base is None:
                continue
            limit = base["simd_ns_frame"] * (1.0 + args.tolerance)
            if model["simd_ns_frame"] > limit:
                failures.append(
                    f"{name}: simd ns/frame {model['simd_ns_frame']:.0f} "
                    f"exceeds baseline {base['simd_ns_frame']:.0f} "
                    f"+{args.tolerance:.0%}"
                )
        if simd_active and model["speedup"] < 1.0 - args.tolerance:
            failures.append(
                f"{name}: SIMD path slower than scalar "
                f"(speedup {model['speedup']:.2f})"
            )

    if simd_active:
        speedups = [g["speedup"] for g in current.get("gemm", [])]
        if speedups and max(speedups) < args.min_gemm_speedup:
            failures.append(
                f"best GEMM speedup {max(speedups):.2f} below required "
                f"{args.min_gemm_speedup:.2f}"
            )
        int8_speedups = [
            g["int8_speedup"]
            for g in current.get("gemm", [])
            if "int8_speedup" in g
        ]
        if int8_speedups and max(int8_speedups) < args.min_int8_speedup:
            failures.append(
                f"best INT8 GEMM speedup {max(int8_speedups):.2f} below "
                f"required {args.min_int8_speedup:.2f}"
            )
        # Dispatch audit: with SIMD active, every shape must have taken
        # the advertised path — the scalar kernel reaching these numbers
        # would mean the dispatcher silently fell back.
        level = current.get("simd", "scalar")
        for g in current.get("gemm", []):
            for field in ("simd_path", "int8_path"):
                path = g.get(field)
                if path is not None and path != level:
                    failures.append(
                        f"gemm {g['label']!r}: {field} took {path!r}, "
                        f"expected active level {level!r}"
                    )
            scalar_path = g.get("scalar_path")
            if scalar_path is not None and scalar_path != "scalar":
                failures.append(
                    f"gemm {g['label']!r}: forced-scalar measurement "
                    f"dispatched to {scalar_path!r}"
                )

    if failures:
        print("bench regression check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    checked = "ratios" if args.ratio_only else "ns/frame and ratios"
    print(
        f"bench regression check passed ({checked}, "
        f"{len(current.get('models', []))} models, simd={current.get('simd')})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
