#!/usr/bin/env python3
"""In-tree lint gate for Ocularone-Bench (DESIGN.md §10).

Project-specific static checks that neither the compiler nor clang-tidy
enforce. Every rule is a convention this codebase relies on for
correctness:

  raw-mutex        std::mutex / std::lock_guard / std::unique_lock /
                   std::condition_variable / std::scoped_lock anywhere in
                   src/ outside core/thread_annotations.hpp. All locking
                   goes through the annotated ocb::Mutex/MutexLock/
                   CondVar wrappers so clang's -Wthread-safety can prove
                   the lock discipline.
  raw-assert       assert() call sites (and <cassert>/<assert.h>
                   includes) in src/. Contracts use OCB_CHECK /
                   OCB_DCHECK (core/check.hpp), which carry expression +
                   location, stay on in release builds (CHECK), and
                   route through the configurable failure handler.
  hot-path-heap    raw `new` / malloc / calloc / realloc under src/nn
                   and src/tensor — the steady-state inference layers
                   whose zero-allocation contract AllocGuard enforces at
                   test time. Owning containers sized at plan time are
                   fine; raw allocations in these layers are not.
  unguarded-field  a class data member declared *after* an ocb::Mutex
                   member without OCB_GUARDED_BY. Convention: fields the
                   mutex guards come after it and carry the annotation;
                   immutable / single-owner fields go before it.
  guarded-by-exists
                   OCB_GUARDED_BY(m) must name a Mutex member declared
                   in the same class or an enclosing one. On non-clang
                   builds the macro expands to nothing, so a dangling
                   mutex name compiles everywhere and silently disables
                   the -Wthread-safety proof for that field on the one
                   CI leg that could have checked it.
  include-hygiene  files that use ocb::Mutex / MutexLock / CondVar /
                   OCB_GUARDED_BY must include core/thread_annotations.hpp
                   themselves rather than leaning on transitive includes.
  im2col-materialize
                   direct column-matrix materialization (im2col /
                   im2col_scratch / im2col_u8_quads) in src/ outside the
                   planner-dispatched conv drivers (nn/ops.cpp,
                   nn/quantize.cpp), the kernels' own TUs and the
                   training-time autograd lowering. The planner prices
                   whether a layer's full column matrix is worth the
                   bytes (ConvAlgo::kIm2colGemm vs the fused stripe
                   packer); an ad-hoc lowering bypasses that decision
                   and silently reintroduces the O(k^2) DRAM traffic
                   the fused path exists to eliminate (DESIGN.md §13).
  simd-tu          AVX2/extended-ISA intrinsics (or <immintrin.h>)
                   outside a *_avx2.cpp translation unit. Only the
                   *_avx2.cpp TUs are compiled with -mavx2 -mfma (plus
                   -mf16c where available); an intrinsic leaking into a
                   portable TU either fails the build on a plain target
                   or, worse, emits AVX2 into code reached before the
                   runtime dispatch check. src/tensor/simd_math.hpp is
                   the one allowlisted header (included by those TUs
                   only).
  sparse-dense-unpack
                   PackedSparseA::unpack_masked_dense / PackedHalfA::
                   unpack_dense calls in src/ outside their definition
                   TU. These reconstruct a dense weight matrix and exist
                   as test/telemetry oracles; a sparse-plan hot path
                   calling one silently forfeits the entire bandwidth
                   win the plan was priced on.
  fault-hook-guard fault-injection hook calls (maybe_corrupt_lanes /
                   set_lane_fault) in src/tensor or src/nn outside an
                   #if region mentioning OCB_FAULT_HOOKS. The hooks
                   must compile to nothing in Release hot paths when
                   the option is off; an unguarded call site would ship
                   the corruption branch (and its atomic load) in every
                   production kernel dispatch (DESIGN.md §14).
  bench-baseline   bench/baselines/*.json must parse and carry the
                   top-level keys scripts/check_bench_regression.py
                   keys off, so a malformed baseline fails in lint, not
                   in a release-gate CI step.

Suppressions: append `// ocb-lint: allow(<rule>)` to the offending line.

Usage:
  scripts/ocb_lint.py                   # lint the whole tree
  scripts/ocb_lint.py --diff BASE       # only files changed since BASE
  scripts/ocb_lint.py --self-test       # prove every rule still fires
  scripts/ocb_lint.py --format=json     # machine-readable findings
  scripts/ocb_lint.py --format=github   # ::error annotations for CI
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

# Files allowed to touch raw primitives: the annotation shim is the one
# place std primitives live, and the alloc guard implements the heap
# hooks themselves.
RAW_MUTEX_ALLOWED = {"src/core/thread_annotations.hpp"}
HEAP_ALLOWED = {"src/core/alloc_guard.cpp"}

ALLOW_RE = re.compile(r"//\s*ocb-lint:\s*allow\(([a-z0-9\-, ]+)\)")


class Finding:
    def __init__(self, rule: str, path: str, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line: str) -> str:
    """Best-effort removal of string/char literals and // comments so
    rule regexes do not fire on prose. Block comments are handled per
    line (enough for this tree's style)."""
    out = []
    i, n = 0, len(line)
    in_str: str | None = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c == "/" and i + 1 < n and line[i + 1] == "*":
            close = line.find("*/", i + 2)
            if close == -1:
                break
            i = close + 2
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(line: str) -> set[str]:
    m = ALLOW_RE.search(line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


# --- rule: raw-mutex --------------------------------------------------------

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
)


def check_raw_mutex(rel: str, lines: list[str]) -> list[Finding]:
    if rel in RAW_MUTEX_ALLOWED or not rel.startswith("src/"):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "raw-mutex" in allowed_rules(raw):
            continue
        m = RAW_MUTEX_RE.search(strip_comments_and_strings(raw))
        if m:
            findings.append(Finding(
                "raw-mutex", rel, i,
                f"{m.group(0)} outside core/thread_annotations.hpp — use "
                "ocb::Mutex / MutexLock / CondVar so -Wthread-safety can "
                "check the lock discipline"))
    return findings


# --- rule: raw-assert -------------------------------------------------------

RAW_ASSERT_RE = re.compile(r"(?<![A-Za-z0-9_])assert\s*\(")
ASSERT_INCLUDE_RE = re.compile(r'#\s*include\s*[<"](cassert|assert\.h)[>"]')


def check_raw_assert(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "raw-assert" in allowed_rules(raw):
            continue
        code = strip_comments_and_strings(raw)
        if ASSERT_INCLUDE_RE.search(code):
            findings.append(Finding(
                "raw-assert", rel, i,
                "<cassert> include — contracts use core/check.hpp"))
            continue
        if "static_assert" in code:
            continue
        if RAW_ASSERT_RE.search(code):
            findings.append(Finding(
                "raw-assert", rel, i,
                "assert() call — use OCB_CHECK/OCB_DCHECK (core/check.hpp)"))
    return findings


# --- rule: hot-path-heap ----------------------------------------------------

HEAP_PATH_PREFIXES = ("src/nn/", "src/tensor/")
HEAP_RE = re.compile(
    r"(?<![A-Za-z0-9_])(new\s+[A-Za-z_:<]|malloc\s*\(|calloc\s*\(|"
    r"realloc\s*\(|aligned_alloc\s*\(|posix_memalign\s*\()"
)


def check_hot_path_heap(rel: str, lines: list[str]) -> list[Finding]:
    if rel in HEAP_ALLOWED or not rel.startswith(HEAP_PATH_PREFIXES):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "heap" in allowed_rules(raw):
            continue
        m = HEAP_RE.search(strip_comments_and_strings(raw))
        if m:
            findings.append(Finding(
                "hot-path-heap", rel, i,
                f"raw allocation ({m.group(0).strip()}...) in an inference "
                "hot-path layer — plan storage at construction (arena, "
                "pre-sized members); AllocGuard will fail the tests "
                "otherwise"))
    return findings


# --- rule: unguarded-field --------------------------------------------------

MUTEX_MEMBER_RE = re.compile(r"^\s*(mutable\s+)?(ocb::)?Mutex\s+\w+_?\s*;")
# A data-member declaration: type tokens then an identifier ending in
# '_' and `;` (optionally with an initialiser). Methods, using-decls and
# friend lines won't match.
FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?[A-Za-z_][\w:<>,\s\*&\.]*[\s\*&]"
    r"[A-Za-z_]\w*_\s*(?:=[^;]*|\{[^;]*\})?\s*;"
)
SCOPE_RESET_RE = re.compile(r"^\s*(\};|public:|protected:|struct\s|class\s)")
EXEMPT_FIELD_RE = re.compile(r"(ocb::)?(Mutex|CondVar)\s")


def check_unguarded_fields(rel: str, lines: list[str]) -> list[Finding]:
    if rel in RAW_MUTEX_ALLOWED or not rel.startswith("src/"):
        return []
    findings = []
    after_mutex = False
    for i, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if SCOPE_RESET_RE.match(code):
            after_mutex = False
            continue
        if MUTEX_MEMBER_RE.match(code):
            after_mutex = True
            continue
        if not after_mutex:
            continue
        if "unguarded-field" in allowed_rules(raw):
            continue
        if EXEMPT_FIELD_RE.search(code):
            continue  # further synchronisation primitives
        if "OCB_GUARDED_BY" in code or "OCB_PT_GUARDED_BY" in code:
            continue
        if FIELD_RE.match(code):
            findings.append(Finding(
                "unguarded-field", rel, i,
                "data member declared after a Mutex without "
                "OCB_GUARDED_BY — move it above the mutex if it is not "
                "guarded, or annotate it"))
    return findings


# --- rule: guarded-by-exists ------------------------------------------------

CLASS_DECL_RE = re.compile(r"\b(class|struct)\s+[A-Za-z_]\w*")
ENUM_CLASS_RE = re.compile(r"\benum\s+(class|struct)\b")
MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:ocb::)?Mutex\s+([A-Za-z_]\w*)\s*;")
GUARDED_USE_RE = re.compile(
    r"\bOCB_(?:PT_)?GUARDED_BY\s*\(\s*([A-Za-z_]\w*)\s*\)")


def check_guarded_by_exists(rel: str, lines: list[str]) -> list[Finding]:
    """Cross-line: every OCB_GUARDED_BY(m) inside a class body must name
    a Mutex member of that class or an enclosing one. Scope tracking is
    brace-based over comment/string-stripped lines; a use is resolved
    against the scope objects live at its line, *after* the whole file
    is scanned, so a mutex declared below the annotated field (or below
    a nested class) still counts — the annotation on a continuation
    line in nn/conv_plan.hpp and the nested-helper pattern both rely on
    that. Uses outside any class body (macro shims, file-scope globals)
    are left alone: clang resolves those in a context this scanner
    cannot model."""
    if rel in RAW_MUTEX_ALLOWED or not rel.startswith("src/"):
        return []
    class_scopes: list[dict] = []  # {"open_depth": int, "mutexes": set}
    uses: list[tuple[int, str, list[dict]]] = []
    depth = 0
    pending_class = False
    for i, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        m = MUTEX_DECL_RE.match(code)
        if m and class_scopes:
            class_scopes[-1]["mutexes"].add(m.group(1))
        if class_scopes and "guarded-by-exists" not in allowed_rules(raw):
            for use in GUARDED_USE_RE.finditer(code):
                uses.append((i, use.group(1), list(class_scopes)))
        if CLASS_DECL_RE.search(code) and not ENUM_CLASS_RE.search(code):
            pending_class = True
        for ch in code:
            if ch == ";" and pending_class:
                pending_class = False  # forward declaration
            elif ch == "{":
                if pending_class:
                    class_scopes.append({"open_depth": depth,
                                         "mutexes": set()})
                    pending_class = False
                depth += 1
            elif ch == "}":
                depth -= 1
                if class_scopes and depth == class_scopes[-1]["open_depth"]:
                    class_scopes.pop()  # uses keep their reference
    findings = []
    for line_no, name, scopes in uses:
        if any(name in s["mutexes"] for s in scopes):
            continue
        findings.append(Finding(
            "guarded-by-exists", rel, line_no,
            f"OCB_GUARDED_BY({name}) does not name a Mutex member of "
            "this class or an enclosing one — the macro expands to "
            "nothing off-clang, so a dangling name silently disables "
            "the -Wthread-safety proof for this field"))
    return findings


# --- rule: include-hygiene --------------------------------------------------

ANNOTATION_USE_RE = re.compile(
    r"\b(MutexLock|CondVar|OCB_GUARDED_BY|OCB_REQUIRES|OCB_EXCLUDES)\b"
    r"|(?<!:)\bMutex\s+\w"
)
ANNOTATION_INCLUDE = 'core/thread_annotations.hpp'


def check_include_hygiene(rel: str, lines: list[str]) -> list[Finding]:
    if rel in RAW_MUTEX_ALLOWED or not rel.startswith("src/"):
        return []
    uses_at: int | None = None
    includes = False
    for i, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if ANNOTATION_INCLUDE in raw and "#include" in raw:
            includes = True
        if uses_at is None and ANNOTATION_USE_RE.search(code):
            if "include-hygiene" in allowed_rules(raw):
                continue
            uses_at = i
    if uses_at is not None and not includes:
        return [Finding(
            "include-hygiene", rel, uses_at,
            "uses annotated locking primitives without including "
            f'"{ANNOTATION_INCLUDE}" directly')]
    return []


# --- rule: im2col-materialize -----------------------------------------------

IM2COL_MATERIALIZE_RE = re.compile(
    r"\bim2col(?:_scratch|_u8_quads)?\s*\("
)
# The column-lowering kernels live in tensor/im2col*; the only in-tree
# consumers allowed to materialize a column matrix are the
# planner-dispatched conv drivers (float + quantized) and the autograd
# training path (gradient lowering, never the inference hot path).
IM2COL_ALLOWED = {
    "src/tensor/im2col.hpp",
    "src/tensor/im2col.cpp",
    "src/tensor/im2col_avx2.cpp",
    "src/nn/ops.cpp",
    "src/nn/quantize.cpp",
    "src/autograd/ops.cpp",
}


def check_im2col_materialize(rel: str, lines: list[str]) -> list[Finding]:
    if rel in IM2COL_ALLOWED or not rel.startswith("src/"):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if not IM2COL_MATERIALIZE_RE.search(code):
            continue
        if "im2col-materialize" in allowed_rules(raw):
            continue
        findings.append(Finding(
            "im2col-materialize", rel, i,
            "column-matrix materialization outside the planner-approved "
            "conv drivers — the planner prices im2col vs the fused "
            "stripe packer per layer; lower through nn/ops.cpp or use "
            "Im2colPanelPacker (DESIGN.md §13)"))
    return findings


# --- rule: simd-tu ----------------------------------------------------------

SIMD_INTRINSIC_RE = re.compile(
    r"\b_mm(?:256|512)?_\w+\s*\(|\b__m(?:128|256|512)[id]?\b"
)
SIMD_INCLUDE_RE = re.compile(r'#\s*include\s*[<"]immintrin\.h[>"]')
# The vector-math header is shared by the *_avx2.cpp TUs; it must never
# be included from a portable TU (the TUs that may include it are
# exactly the ones this rule exempts).
SIMD_ALLOWED = {"src/tensor/simd_math.hpp"}


def check_simd_tu(rel: str, lines: list[str]) -> list[Finding]:
    if not rel.startswith("src/"):
        return []
    if rel.endswith("_avx2.cpp") or rel in SIMD_ALLOWED:
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        if "simd-tu" in allowed_rules(raw):
            continue
        code = strip_comments_and_strings(raw)
        m = SIMD_INCLUDE_RE.search(code) or SIMD_INTRINSIC_RE.search(code)
        if m:
            findings.append(Finding(
                "simd-tu", rel, i,
                f"extended-ISA intrinsic ({m.group(0).strip()}...) outside "
                "a *_avx2.cpp TU — only those are compiled with -mavx2; "
                "move the kernel there behind the runtime dispatch"))
    return findings


# --- rule: sparse-dense-unpack ----------------------------------------------

SPARSE_UNPACK_RE = re.compile(r"\bunpack_(?:masked_)?dense\s*\(")
# Declaration and definition live here; everything else in src/ must
# consume the packed panels directly.
SPARSE_UNPACK_ALLOWED = {
    "src/tensor/sgemm_sparse.hpp",
    "src/tensor/sgemm_sparse.cpp",
}


def check_sparse_dense_unpack(rel: str, lines: list[str]) -> list[Finding]:
    if rel in SPARSE_UNPACK_ALLOWED or not rel.startswith("src/"):
        return []
    findings = []
    for i, raw in enumerate(lines, 1):
        code = strip_comments_and_strings(raw)
        if not SPARSE_UNPACK_RE.search(code):
            continue
        if "sparse-dense-unpack" in allowed_rules(raw):
            continue
        findings.append(Finding(
            "sparse-dense-unpack", rel, i,
            "dense-weight reconstruction on a compressed panel — the "
            "unpack oracles are for tests/telemetry; hot paths must read "
            "the packed panels or the plan's bandwidth win is forfeit"))
    return findings


# --- rule: fault-hook-guard -------------------------------------------------

FAULT_HOOK_RE = re.compile(r"\b(?:maybe_corrupt_lanes|set_lane_fault)\s*\(")
# The hook's own declaration/definition TU provides the #else no-ops;
# everything else in the kernel layers must guard call sites so the
# Release hot path compiles them out entirely.
FAULT_HOOK_ALLOWED = {
    "src/tensor/fault_hook.hpp",
    "src/tensor/fault_hook.cpp",
}
FAULT_HOOK_PATHS = ("src/tensor/", "src/nn/")


def check_fault_hook_guard(rel: str, lines: list[str]) -> list[Finding]:
    if rel in FAULT_HOOK_ALLOWED or not rel.startswith(FAULT_HOOK_PATHS):
        return []
    findings = []
    # Stack of open preprocessor conditionals: True when the opening
    # directive mentions OCB_FAULT_HOOKS (the whole region through any
    # #else counts as guarded — the #else branch is the compiled-out
    # side and can only contain no-ops).
    if_stack: list[bool] = []
    for i, raw in enumerate(lines, 1):
        stripped = raw.lstrip()
        if stripped.startswith("#"):
            directive = stripped[1:].lstrip()
            if directive.startswith(("ifdef", "ifndef", "if")):
                if_stack.append("OCB_FAULT_HOOKS" in raw)
            elif directive.startswith("endif") and if_stack:
                if_stack.pop()
            continue
        code = strip_comments_and_strings(raw)
        if not FAULT_HOOK_RE.search(code):
            continue
        if "fault-hook-guard" in allowed_rules(raw):
            continue
        if any(if_stack):
            continue
        findings.append(Finding(
            "fault-hook-guard", rel, i,
            "fault-injection hook call outside an #if OCB_FAULT_HOOKS "
            "region — Release hot paths must compile the hooks out "
            "(DESIGN.md §14)"))
    return findings


# --- rule: bench-baseline ---------------------------------------------------

BASELINE_REQUIRED_KEYS = {
    "BENCH_kernels.json": {"simd", "gemm", "models"},
    "BENCH_multi_model.json": {"bench", "batched_speedup", "models"},
    "BENCH_planner.json": {"bench", "simd", "layers", "models"},
    "BENCH_precision_sweep.json": {"latency", "accuracy"},
    "BENCH_pareto.json": {"bench", "kernel_gates", "equivalence", "frontier"},
    "BENCH_fusion.json": {"bench", "simd", "gate_model", "models"},
    "BENCH_fault.json": {"bench", "simd", "alloc_counting", "verify_cadence",
                         "verify_overhead_pct", "models", "devsim"},
}


def check_bench_baselines(paths: list[Path]) -> list[Finding]:
    findings = []
    for path in paths:
        rel = path.relative_to(REPO).as_posix()
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            findings.append(Finding(
                "bench-baseline", rel, 1, f"unreadable baseline: {err}"))
            continue
        if not isinstance(data, dict) or not data:
            findings.append(Finding(
                "bench-baseline", rel, 1,
                "baseline must be a non-empty JSON object"))
            continue
        required = BASELINE_REQUIRED_KEYS.get(path.name)
        if required:
            missing = sorted(required - set(data))
            if missing:
                findings.append(Finding(
                    "bench-baseline", rel, 1,
                    f"missing required keys: {', '.join(missing)} "
                    "(check_bench_regression.py keys off these)"))
    return findings


# --- driver -----------------------------------------------------------------

FILE_CHECKS = [
    check_raw_mutex,
    check_raw_assert,
    check_hot_path_heap,
    check_unguarded_fields,
    check_guarded_by_exists,
    check_include_hygiene,
    check_im2col_materialize,
    check_simd_tu,
    check_sparse_dense_unpack,
    check_fault_hook_guard,
]


def lint_file(path: Path) -> list[Finding]:
    rel = path.relative_to(REPO).as_posix()
    try:
        lines = path.read_text(errors="replace").splitlines()
    except OSError as err:
        return [Finding("io", rel, 1, f"unreadable: {err}")]
    findings: list[Finding] = []
    for check in FILE_CHECKS:
        findings.extend(check(rel, lines))
    return findings


def tree_files() -> list[Path]:
    out = subprocess.run(
        ["git", "ls-files", "src", "tests", "bench", "examples"],
        cwd=REPO, capture_output=True, text=True, check=True)
    return [REPO / f for f in out.stdout.splitlines()
            if Path(f).suffix in CXX_SUFFIXES]


def diff_files(base: str) -> list[Path]:
    out = subprocess.run(
        ["git", "diff", "--name-only", "--diff-filter=d", base, "--"],
        cwd=REPO, capture_output=True, text=True, check=True)
    return [REPO / f for f in out.stdout.splitlines()
            if Path(f).suffix in CXX_SUFFIXES and (REPO / f).exists()]


def run_lint(files: list[Path], with_baselines: bool) -> list[Finding]:
    findings: list[Finding] = []
    for path in files:
        findings.extend(lint_file(path))
    if with_baselines:
        findings.extend(
            check_bench_baselines(sorted((REPO / "bench/baselines").glob("*.json"))))
    return findings


# --- output formats ---------------------------------------------------------


def gh_data(s: str) -> str:
    """Escape a ::error message payload per GitHub's workflow-command
    syntax (order matters: % first)."""
    return s.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def gh_property(s: str) -> str:
    """Escape a ::error property value (file=, title=), which
    additionally reserves ':' and ','."""
    return gh_data(s).replace(":", "%3A").replace(",", "%2C")


def emit(findings: list[Finding], files: list[Path], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps({
            "tool": "ocb_lint",
            "files": len(files),
            "findings": [{"rule": f.rule, "path": f.path, "line": f.line,
                          "message": f.message} for f in findings],
        }, indent=2))
        return
    if fmt == "github":
        # Annotations surface inline on the PR diff; the trailing
        # summary line still lands in the job log.
        for f in findings:
            print(f"::error file={gh_property(f.path)},line={f.line},"
                  f"title={gh_property('ocb_lint ' + f.rule)}::"
                  f"{gh_data(f.message)}")
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"\nocb_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)")
    else:
        print(f"ocb_lint: clean ({len(files)} files)")


# --- self-test --------------------------------------------------------------

SELF_TEST_CASES = [
    # (rule expected to fire, relative path to pretend, source lines)
    ("raw-mutex", "src/runtime/bad.cpp",
     ["std::mutex mu;"]),
    ("raw-mutex", "src/runtime/bad.cpp",
     ["std::lock_guard<std::mutex> lock(mu);"]),
    ("raw-assert", "src/nn/bad.cpp",
     ["#include <cassert>"]),
    ("raw-assert", "src/nn/bad.cpp",
     ["assert(x > 0);"]),
    ("hot-path-heap", "src/tensor/bad.cpp",
     ["float* p = new float[1024];"]),
    ("hot-path-heap", "src/nn/bad.cpp",
     ["void* p = malloc(64);"]),
    ("unguarded-field", "src/runtime/bad.hpp",
     ["class Q {",
      " private:",
      "  mutable Mutex mutex_;",
      "  std::size_t depth_ = 0;",
      "};"]),
    ("guarded-by-exists", "src/runtime/bad.hpp",
     ["#include \"core/thread_annotations.hpp\"",
      "class Q {",
      "  mutable Mutex mutex_;",
      "  std::size_t depth_ OCB_GUARDED_BY(mutx_) = 0;",
      "};"]),
    ("guarded-by-exists", "src/runtime/bad2.hpp",
     ["#include \"core/thread_annotations.hpp\"",
      "class A {",
      "  mutable Mutex mutex_;",
      "};",
      "class B {",
      "  int hits_ OCB_GUARDED_BY(mutex_) = 0;",
      "};"]),
    ("include-hygiene", "src/runtime/bad.hpp",
     ["class Q {",
      "  MutexLock hold();",
      "};"]),
    ("im2col-materialize", "src/runtime/bad.cpp",
     ["im2col(input, geom, col.data());"]),
    ("im2col-materialize", "src/nn/bad.cpp",
     ["float* col = im2col_scratch(input, geom, scratch);"]),
    ("im2col-materialize", "src/nn/bad.cpp",
     ["im2col_u8_quads(input, geom, zp, quads);"]),
    ("simd-tu", "src/nn/bad.cpp",
     ["__m256 acc = _mm256_setzero_ps();"]),
    ("simd-tu", "src/tensor/bad.hpp",
     ["#include <immintrin.h>"]),
    ("sparse-dense-unpack", "src/nn/bad.cpp",
     ["sparse_packed_[i].unpack_masked_dense(scratch.data());"]),
    ("sparse-dense-unpack", "src/nn/bad.cpp",
     ["half_packed_[i].unpack_dense(scratch.data());"]),
    ("fault-hook-guard", "src/tensor/bad.cpp",
     ["fault_hook::detail::maybe_corrupt_lanes(c, m, n, ldc);"]),
    ("fault-hook-guard", "src/nn/bad.cpp",
     ["#if defined(OCB_FAULT_HOOKS)",
      "#endif",
      "fault_hook::set_lane_fault(fault);"]),
]

SELF_TEST_CLEAN = [
    ("src/runtime/good.cpp",
     ["// std::mutex in a comment is fine",
      "const char* s = \"std::mutex\";",
      "static_assert(sizeof(int) == 4);",
      "std::mutex mu;  // ocb-lint: allow(raw-mutex)"]),
    ("src/runtime/good.hpp",
     ["#include \"core/thread_annotations.hpp\"",
      "class Q {",
      "  std::size_t capacity_;  // before the mutex: immutable",
      "  mutable Mutex mutex_;",
      "  CondVar cv_;",
      "  std::size_t depth_ OCB_GUARDED_BY(mutex_) = 0;",
      "};"]),
    ("src/nn/good.cpp",
     ["buffer_.resize(n);  // owning container growth is fine",
      "auto plan = std::make_unique<Plan>();  // not a raw new"]),
    ("src/runtime/good4.hpp",
     ["#include \"core/thread_annotations.hpp\"",
      "class Q {",
      "  struct Waiter {",
      "    int generation_ OCB_GUARDED_BY(mutex_) = 0;",
      "  };",
      "  mutable Mutex mutex_;  // declared after the nested use",
      "  std::deque<int>",
      "      items_ OCB_GUARDED_BY(mutex_);",
      "};",
      "Mutex g_registry_mu;",
      "#define WRAP(x) OCB_GUARDED_BY(x)  // file scope: lenient"]),
    ("src/runtime/good2.cpp",
     ["// im2col(x) in a comment is fine",
      "engine->prepare(request);",
      "im2col(input, geom, col);  // ocb-lint: allow(im2col-materialize)"]),
    ("src/nn/ops.cpp",
     ["const float* col = im2col_scratch(input, geom, scratch);"]),
    ("src/nn/good.cpp",
     ["packer.pack(x0, x1, panel);  // fused stripe packing is the point"]),
    ("src/tensor/sgemm_sparse_avx2.cpp",
     ["__m256 acc = _mm256_setzero_ps();",
      "#include <immintrin.h>"]),
    ("src/tensor/simd_math.hpp",
     ["#include <immintrin.h>"]),
    ("src/tensor/sgemm_sparse.cpp",
     ["void PackedSparseA::unpack_masked_dense(float* out) const {"]),
    ("src/nn/good2.cpp",
     ["// unpack_masked_dense is the test oracle, not a hot path"]),
    ("src/tensor/good_gemm.cpp",
     ["#if defined(OCB_FAULT_HOOKS)",
      "  fault_hook::detail::maybe_corrupt_lanes(c, m, n, n);",
      "#endif"]),
    ("src/tensor/fault_hook.cpp",
     ["void set_lane_fault(const LaneFault& fault) noexcept {"]),
    ("src/runtime/good3.cpp",
     ["injector.arm_lane_fault();  // outside the kernel layers"]),
]


def self_test() -> int:
    failures = 0
    for rule, rel, lines in SELF_TEST_CASES:
        findings = [f for check in FILE_CHECKS for f in check(rel, lines)]
        if not any(f.rule == rule for f in findings):
            print(f"self-test FAIL: rule {rule} did not fire on {lines!r}")
            failures += 1
    for rel, lines in SELF_TEST_CLEAN:
        findings = [f for check in FILE_CHECKS for f in check(rel, lines)]
        if findings:
            print(f"self-test FAIL: clean snippet {rel} raised "
                  f"{[str(f) for f in findings]}")
            failures += 1
    # Baseline rule: must fire on garbage, pass on the committed files.
    bad = check_bench_baselines([REPO / "scripts" / "ocb_lint.py"])
    if not bad:
        print("self-test FAIL: bench-baseline accepted a non-JSON file")
        failures += 1
    # GitHub annotation escaping: a %, newline, colon or comma in a
    # finding must not break the ::error command syntax.
    if gh_data("a%\nb") != "a%25%0Ab" or gh_property("f:1,t") != "f%3A1%2Ct":
        print("self-test FAIL: github annotation escaping")
        failures += 1
    if failures == 0:
        print(f"self-test OK: {len(SELF_TEST_CASES)} firing cases, "
              f"{len(SELF_TEST_CLEAN)} clean cases")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--diff", metavar="BASE",
                        help="lint only files changed since BASE "
                             "(git diff BASE)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on a known-bad "
                             "snippet and stays quiet on known-good ones")
    parser.add_argument("--format", choices=("text", "json", "github"),
                        default="text",
                        help="finding output: human text (default), a "
                             "JSON document, or GitHub ::error "
                             "annotations for CI")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to lint (default: the tree)")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    if args.paths:
        files = [Path(p).resolve() for p in args.paths]
        with_baselines = False
    elif args.diff:
        files = diff_files(args.diff)
        # Diff mode still validates baselines when one changed.
        with_baselines = any(
            "bench/baselines" in f.as_posix() for f in files)
    else:
        files = tree_files()
        with_baselines = True

    findings = run_lint(files, with_baselines)
    emit(findings, files, args.format)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
